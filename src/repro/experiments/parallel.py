"""Process-parallel experiment execution with content-addressed caching.

The paper's evaluation is a wide sweep — Figs. 12-21 and Table 1
across schedulers, backends, and fifteen polybench workloads — and the
serial ``run_matrix`` pays for every cell on every run.  This module
shards that work:

* :func:`run_matrix_parallel` — executes each (workload, system) cell
  of the execution matrix in a ``ProcessPoolExecutor`` worker and
  merges results **deterministically**: cells are merged in cell-key
  order (workload-major, the serial iteration order), never completion
  order, so the merged matrix, metrics registry, and span stream are
  identical to a serial run's.
* :func:`run_experiments_parallel` — same sharding at experiment
  granularity for ``python -m repro.experiments all --jobs N``.
* :class:`ResultCache` — a content-addressed cache under
  ``.repro-cache/`` keyed by (experiment id, config hash, source-tree
  hash of ``src/repro``).  A cell whose inputs have not changed is
  replayed from the cache — zero simulations — and any source edit
  invalidates everything, so the cache can never serve stale physics.

Telemetry crosses the process boundary as *fragments*
(:mod:`repro.telemetry.fragments`): each worker runs under a fresh
tracer/registry, captures the record, and the parent replays the
fragments into its ambient telemetry in cell-key order — reproducing
the serial run's ``#N`` prefix assignments and shared-counter totals
exactly.
"""

from __future__ import annotations

import concurrent.futures
import contextlib
import dataclasses
import hashlib
import json
import os
import pathlib
import pickle
import platform
import typing

from repro.controller.request import reset_request_ids
from repro.experiments import runner
from repro.sim.compiled import use_backend
from repro.sim.hostprof import current_hostprof, use_hostprof
from repro.sim.sampling import current_sampling, use_sampling
from repro.systems import build_system
from repro.systems.base import ExecutionResult
from repro.telemetry.bench import collect_provenance
from repro.telemetry.fragments import (
    HostProfFragment,
    MetricsFragment,
    TracerFragment,
    capture_hostprof,
    capture_metrics,
    capture_tracer,
    merge_hostprof,
    merge_metrics,
    merge_tracer,
)
from repro.telemetry.hostprof import HostProfiler
from repro.telemetry.metrics import (
    MetricsRegistry,
    current_metrics,
    use_metrics,
)
from repro.telemetry.timeseries import SamplingConfig
from repro.telemetry.tracer import (
    RecordingTracer,
    current_tracer,
    use_tracer,
)

#: Bumped whenever the cached payload layout changes; part of every key.
#: 2: capture tuple gained the time-series sampling spec.
#: 3: capture tuple + CellOutcome gained the host-profiling fragment.
CACHE_SCHEMA = 3

#: What telemetry a cell must capture: ``(metrics, spans, sampling,
#: hostprof)`` where sampling is ``None`` or ``(window_ns, retention)``.
#: Part of the cache key — a sampled (or host-profiled) rerun never
#: reuses an entry captured under different instrumentation.
CaptureSpec = typing.Tuple[
    bool, bool,
    typing.Optional[typing.Tuple[float, typing.Optional[int]]],
    bool]

#: Default cache location (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Canonical ``results/*.txt`` stem for each experiment id.
RESULT_NAMES: typing.Dict[str, str] = {
    "tables": "table1",
    "fig01": "fig01_motivation",
    "fig07": "fig07_firmware",
    "fig12": "fig12_interleaving",
    "fig13": "fig13_schedulers",
    "fig15": "fig15_bandwidth",
    "fig16": "fig16_exec_time",
    "fig17": "fig17_energy",
    "fig18": "fig18_ipc_gemver",
    "fig19": "fig19_ipc_doitg",
    "fig20": "fig20_power_gemver",
    "fig21": "fig21_power_doitg",
    "endurance": "endurance_reliability",
    "overload": "service_overload",
    "burst_absorption": "service_burst_absorption",
    "tenant_isolation": "service_tenant_isolation",
}


# ----------------------------------------------------------------------
# Cache keying
# ----------------------------------------------------------------------
_TREE_DIGESTS: typing.Dict[str, str] = {}


def source_tree_digest(root: typing.Union[str, os.PathLike[str], None]
                       = None) -> str:
    """Content hash of every ``*.py`` under ``src/repro``.

    Any source change — a latency constant, a scheduler tweak —
    produces a new digest and therefore a cold cache: cached results
    can never outlive the code that produced them.  Hashed once per
    process per root.
    """
    if root is None:
        root = pathlib.Path(__file__).resolve().parents[1]
    root = pathlib.Path(root).resolve()
    cached = _TREE_DIGESTS.get(str(root))
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    value = digest.hexdigest()
    _TREE_DIGESTS[str(root)] = value
    return value


def _config_payload(config: runner.ExperimentConfig
                    ) -> typing.Dict[str, typing.Any]:
    payload = dataclasses.asdict(config)
    payload["workloads"] = list(payload["workloads"])
    return payload


def cell_key(experiment: str, config: runner.ExperimentConfig,
             capture: CaptureSpec,
             tree_digest: typing.Union[str, None] = None) -> str:
    """Content-addressed key for one experiment cell.

    ``experiment`` is the cell id (``"matrix/<workload>/<system>"`` or
    a figure id); ``capture`` records whether metrics/span fragments
    were requested plus the time-series sampling spec, so a
    telemetry-bearing (or sampled) rerun never reuses an entry captured
    under different instrumentation.
    """
    payload = {
        "schema": CACHE_SCHEMA,
        "experiment": experiment,
        "config": _config_payload(config),
        "capture": list(capture),
        "tree": tree_digest if tree_digest is not None
        else source_tree_digest(),
        "python": platform.python_version(),
    }
    encoded = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(encoded.encode()).hexdigest()


class ResultCache:
    """Pickle store of cell outcomes under ``<root>/<key[:2]>/<key>``."""

    def __init__(self, root: typing.Union[str, os.PathLike[str]]) -> None:
        self.root = pathlib.Path(root)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> typing.Union["CellOutcome", None]:
        """The cached outcome for ``key``, or None (counts hit/miss)."""
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                outcome = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError):
            # Unreadable or stale-format entries are misses, never
            # errors: the cache must always be safe to delete.
            self.misses += 1
            return None
        self.hits += 1
        return typing.cast("CellOutcome", outcome)

    def put(self, key: str, outcome: "CellOutcome") -> None:
        """Persist ``outcome``; atomic via rename so readers never see
        a torn write."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        temp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(temp, "wb") as handle:
            pickle.dump(outcome, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(temp, path)


# ----------------------------------------------------------------------
# Cell execution (worker side)
# ----------------------------------------------------------------------
@dataclasses.dataclass
class CellOutcome:
    """Everything one cell produced, picklable across processes."""

    payload: typing.Any  # ExecutionResult (matrix) or report str
    metrics: typing.Union[MetricsFragment, None]
    tracer: typing.Union[TracerFragment, None]
    hostprof: typing.Union[HostProfFragment, None] = None


@contextlib.contextmanager
def _fresh_telemetry(capture: CaptureSpec) -> typing.Iterator[
        typing.Tuple[typing.Union[MetricsRegistry, None],
                     typing.Union[RecordingTracer, None],
                     typing.Union[HostProfiler, None]]]:
    """Fresh ambient registry/tracer/host profiler for one cell."""
    want_metrics, want_spans, sampling, want_hostprof = capture
    registry = MetricsRegistry() if want_metrics else None
    tracer = RecordingTracer() if want_spans else None
    profiler = HostProfiler() if want_hostprof else None
    with contextlib.ExitStack() as stack:
        if tracer is not None:
            stack.enter_context(use_tracer(tracer))
        if registry is not None:
            stack.enter_context(use_metrics(registry))
            if sampling is not None:
                # Same window/retention the parent sampled with, so the
                # worker's windowed series merge byte-identically.
                stack.enter_context(use_sampling(SamplingConfig(*sampling)))
        if profiler is not None:
            stack.enter_context(use_hostprof(profiler))
        yield registry, tracer, profiler


def _finish_cell(payload: typing.Any,
                 registry: typing.Union[MetricsRegistry, None],
                 tracer: typing.Union[RecordingTracer, None],
                 profiler: typing.Union[HostProfiler, None] = None
                 ) -> CellOutcome:
    return CellOutcome(
        payload=payload,
        metrics=capture_metrics(registry) if registry is not None else None,
        tracer=capture_tracer(tracer) if tracer is not None else None,
        hostprof=(capture_hostprof(profiler)
                  if profiler is not None else None))


def _run_matrix_cell(config: runner.ExperimentConfig, workload: str,
                     system: str,
                     capture: CaptureSpec) -> CellOutcome:
    """Worker: one (workload, system) cell under fresh telemetry."""
    with _fresh_telemetry(capture) as (registry, tracer, profiler):
        reset_request_ids()
        bundle = config.bundle(workload)
        with use_backend(config.backend):
            result = build_system(system,
                                  config.system_config()).run(bundle)
    return _finish_cell(result, registry, tracer, profiler)


def _run_experiment_cell(name: str, config: runner.ExperimentConfig,
                         capture: CaptureSpec) -> CellOutcome:
    """Worker: one whole experiment under fresh telemetry.

    The experiment registry lives in the CLI module; importing it here
    (not at module scope) keeps the worker picklable and avoids an
    import cycle.
    """
    from repro.experiments.cli import EXPERIMENTS
    _, run_fn = EXPERIMENTS[name]
    with _fresh_telemetry(capture) as (registry, tracer, profiler):
        reset_request_ids()
        with use_backend(config.backend):
            if tracer is not None:
                with tracer.scope(name):
                    report = run_fn(config)
            else:
                report = run_fn(config)
    return _finish_cell(report, registry, tracer, profiler)


# ----------------------------------------------------------------------
# Sharded execution (parent side)
# ----------------------------------------------------------------------
@dataclasses.dataclass
class RunStats:
    """How a sharded run's cells were satisfied."""

    simulated: int = 0
    cached: int = 0

    @property
    def total(self) -> int:
        """All cells the run covered."""
        return self.simulated + self.cached


@dataclasses.dataclass
class MatrixRun:
    """A merged matrix plus the stats of the run that produced it."""

    matrix: typing.Dict[str, typing.Dict[str, ExecutionResult]]
    stats: RunStats


@dataclasses.dataclass
class ExperimentRun:
    """Ordered experiment reports plus run stats."""

    reports: "typing.Dict[str, str]"  # experiment id -> report text
    stats: RunStats
    #: Per-experiment raw outcomes (reports + telemetry fragments), in
    #: experiment order — for callers doing their own staged merge.
    outcomes: "typing.Dict[str, CellOutcome]" = dataclasses.field(
        default_factory=dict)


def _execute_cells(
        cells: typing.Sequence[typing.Tuple[str, typing.Any]],
        worker: typing.Callable[..., CellOutcome],
        jobs: int,
        cache: typing.Union[ResultCache, None],
        keys: typing.Union[typing.Sequence[str], None],
        capture: CaptureSpec,
) -> typing.Tuple[typing.List[CellOutcome], RunStats]:
    """Run ``cells`` (id, worker-args) and return outcomes **in cell
    order** regardless of completion order; cache when enabled.

    This is the determinism pivot: submission fans out, but merging
    walks ``cells`` front to back, so telemetry replay and result
    assembly see the serial order.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    stats = RunStats()
    outcomes: typing.List[typing.Union[CellOutcome, None]] = [None] * len(
        cells)
    pending: typing.List[int] = []
    for index in range(len(cells)):
        cached = (cache.get(keys[index])
                  if cache is not None and keys is not None else None)
        if cached is not None:
            outcomes[index] = cached
            stats.cached += 1
        else:
            pending.append(index)
    if pending:
        stats.simulated += len(pending)
        if jobs > 1:
            with concurrent.futures.ProcessPoolExecutor(
                    max_workers=min(jobs, len(pending))) as pool:
                futures = {
                    index: pool.submit(worker, *cells[index][1],
                                       capture)
                    for index in pending
                }
                for index, future in futures.items():
                    outcomes[index] = future.result()
        else:
            for index in pending:
                outcomes[index] = worker(*cells[index][1], capture)
        if cache is not None and keys is not None:
            for index in pending:
                cache.put(keys[index],
                          typing.cast(CellOutcome, outcomes[index]))
    return [typing.cast(CellOutcome, outcome)
            for outcome in outcomes], stats


def merge_outcome(outcome: CellOutcome,
                  registry: MetricsRegistry,
                  tracer: "typing.Any") -> None:
    """Replay one cell's telemetry fragments into the ambient sinks."""
    if outcome.metrics is not None and registry.enabled:
        merge_metrics(registry, outcome.metrics)
    if outcome.tracer is not None and getattr(tracer, "enabled", False):
        if isinstance(tracer, RecordingTracer):
            merge_tracer(tracer, outcome.tracer)
    if outcome.hostprof is not None:
        ambient = current_hostprof()
        if isinstance(ambient, HostProfiler):
            merge_hostprof(ambient, outcome.hostprof)


def _ambient_capture() -> CaptureSpec:
    provider = current_sampling()
    sampling = (provider.spec()
                if isinstance(provider, SamplingConfig) else None)
    return (current_metrics().enabled,
            isinstance(current_tracer(), RecordingTracer),
            sampling,
            current_hostprof() is not None)


def run_matrix_parallel(
        config: runner.ExperimentConfig,
        systems: typing.Sequence[str],
        workloads: typing.Sequence[str] | None = None,
        *,
        jobs: int = 1,
        cache_dir: typing.Union[str, os.PathLike[str], None] = None,
) -> MatrixRun:
    """Sharded, cached equivalent of :func:`repro.experiments.runner.
    run_matrix`.

    Returns the same ``matrix[workload][system]`` mapping (inside a
    :class:`MatrixRun` carrying cache stats).  The merged matrix,
    ambient metrics registry, and ambient span stream are identical to
    a serial run's: cells merge in workload-major cell-key order.
    """
    chosen = tuple(workloads) if workloads is not None else config.workloads
    runner.require_cells(chosen, systems)
    capture = _ambient_capture()
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    cells = [(f"matrix/{workload}/{system}", (config, workload, system))
             for workload in chosen for system in systems]
    keys = None
    if cache is not None:
        tree = source_tree_digest()
        keys = [cell_key(cell_id, config, capture, tree)
                for cell_id, _ in cells]
    outcomes, stats = _execute_cells(
        cells, _run_matrix_cell, jobs, cache, keys, capture)
    registry = current_metrics()
    tracer = current_tracer()
    matrix: typing.Dict[str, typing.Dict[str, ExecutionResult]] = {}
    for (_, (_, workload, system)), outcome in zip(cells, outcomes):
        merge_outcome(outcome, registry, tracer)
        matrix.setdefault(workload, {})[system] = typing.cast(
            ExecutionResult, outcome.payload)
    return MatrixRun(matrix=matrix, stats=stats)


def run_experiments_parallel(
        names: typing.Sequence[str],
        config: runner.ExperimentConfig,
        *,
        jobs: int = 1,
        cache_dir: typing.Union[str, os.PathLike[str], None] = None,
        merge_into_ambient: bool = True,
) -> ExperimentRun:
    """Run whole experiments as shards (the CLI's ``all --jobs N``).

    Reports come back keyed by experiment id in the order given;
    telemetry fragments merge into the ambient tracer/registry per
    experiment, in experiment order, so ``--metrics``/``--trace``
    output matches a serial ``all`` run.
    """
    if not names:
        raise ValueError("run_experiments_parallel: empty experiment list")
    capture = _ambient_capture()
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    cells = [(f"experiment/{name}", (name, config)) for name in names]
    keys = None
    if cache is not None:
        tree = source_tree_digest()
        keys = [cell_key(cell_id, config, capture, tree)
                for cell_id, _ in cells]
    outcomes, stats = _execute_cells(
        cells, _run_experiment_cell, jobs, cache, keys, capture)
    registry = current_metrics()
    tracer = current_tracer()
    reports: typing.Dict[str, str] = {}
    raw: typing.Dict[str, CellOutcome] = {}
    for (_, (name, _)), outcome in zip(cells, outcomes):
        if merge_into_ambient:
            merge_outcome(outcome, registry, tracer)
        reports[name] = typing.cast(str, outcome.payload)
        raw[name] = outcome
    return ExperimentRun(reports=reports, stats=stats, outcomes=raw)


# ----------------------------------------------------------------------
# Result files
# ----------------------------------------------------------------------
def write_result(results_dir: typing.Union[str, os.PathLike[str]],
                 stem: str, text: str,
                 config: runner.ExperimentConfig) -> pathlib.Path:
    """Persist one report under the provenance header the benchmark
    suite uses, so CLI- and pytest-produced ``results/*.txt`` are
    interchangeable."""
    directory = pathlib.Path(results_dir)
    directory.mkdir(parents=True, exist_ok=True)
    provenance = collect_provenance(scale=config.scale, seed=config.seed,
                                    agents=config.agents)
    header = "\n".join(
        f"# {key}: {provenance[key]}"
        for key in ("git_sha", "scale", "seed", "agents", "timestamp"))
    path = directory / f"{stem}.txt"
    path.write_text(header + "\n\n" + text + "\n")
    return path
