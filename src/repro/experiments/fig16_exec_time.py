"""Figure 16: execution-time decomposition of every system.

The paper splits each system's execution into data-movement and
computation components.  We report, per system, the mean fraction of
wall time in each category (data preparation, kernel offload,
computation, memory stalls, store stalls, output writeback).
"""

from __future__ import annotations

import typing

from repro.experiments.runner import (
    ExperimentConfig,
    format_table,
    run_matrix,
)
from repro.systems import SYSTEM_NAMES

CATEGORIES = ("data_preparation", "kernel_offload", "computation",
              "memory_stall", "store_stall", "output_writeback")


def run(config: ExperimentConfig = ExperimentConfig(),
        systems: typing.Sequence[str] = SYSTEM_NAMES,
        matrix: typing.Dict | None = None) -> typing.Dict:
    """Returns mean per-category time fractions per system."""
    if matrix is None:
        matrix = run_matrix(config, list(systems))
    fractions: typing.Dict[str, typing.Dict[str, float]] = {
        name: {category: 0.0 for category in CATEGORIES}
        for name in systems
    }
    per_workload = {}
    for workload_name, results in matrix.items():
        per_workload[workload_name] = {}
        for name in systems:
            shares = results[name].time_breakdown.fractions()
            per_workload[workload_name][name] = shares
            for category in CATEGORIES:
                fractions[name][category] += shares.get(category, 0.0)
    count = len(matrix)
    for name in systems:
        for category in CATEGORIES:
            fractions[name][category] /= count
    return {
        "systems": list(systems),
        "mean_fractions": fractions,
        "per_workload": per_workload,
    }


def report(result: typing.Dict) -> str:
    """Text rendering of the figure's data."""
    rows = []
    for name in result["systems"]:
        shares = result["mean_fractions"][name]
        rows.append([name] + [shares[c] for c in CATEGORIES])
    table = format_table(["system"] + list(CATEGORIES), rows)
    return f"Figure 16: execution-time decomposition (mean fractions)\n{table}"
