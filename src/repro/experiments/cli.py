"""Command-line experiment runner.

Usage::

    python -m repro.experiments list
    python -m repro.experiments run fig15 [--scale 0.25] [--quick]
    python -m repro.experiments run all --quick
    python -m repro.experiments all --jobs 4 --cache --results results
    python -m repro.experiments fig12 --trace /tmp/fig12.json --metrics

The ``run`` keyword may be omitted: a first argument that is not a
subcommand is treated as an experiment id (or a comma-separated list,
``fig12,fig13``).  Each experiment prints the same text report the
benchmarks write to ``results/``; ``--results DIR`` also writes the
reports there under the benchmarks' provenance header.

``--jobs N`` shards the chosen experiments across worker processes and
merges reports and telemetry back in experiment order, so the output
is identical to a serial run.  ``--cache [DIR]`` replays unchanged
experiments from the content-addressed result cache (default
``.repro-cache/``) instead of re-simulating them.

Telemetry flags (``--trace``, ``--spans``, ``--metrics``) install an
ambient tracer/metrics registry around the chosen experiments and
export the capture afterwards: a Perfetto/Chrome JSON trace (load it
at https://ui.perfetto.dev), a JSON-lines span log consumable by the
``repro.analysis`` conformance checker, and a metrics summary table.
``--timeseries OUT [--window NS]`` additionally samples queue depths
and occupancies into fixed windows of simulated time and exports them
(view with ``python -m repro.telemetry watch OUT``).
``--hostprof OUT`` attributes *host* wall-clock to (component, process,
phase, event-kind) buckets at event-dispatch granularity and exports a
flamegraph: speedscope JSON by default (load at https://speedscope.app
or view with ``python -m repro.telemetry flame OUT``), collapsed-stack
text when OUT ends in ``.collapsed``/``.txt``.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
import typing

from repro.controller.request import reset_request_ids
from repro.experiments import parallel, runner
from repro.sim import BACKENDS, use_backend
from repro.sim.hostprof import use_hostprof
from repro.telemetry import (
    DEFAULT_WINDOW_NS,
    HostProfiler,
    SamplingConfig,
    Telemetry,
    build_profile,
    render_html,
    render_summary,
    render_text,
    write_hostprof,
)
from repro.experiments import (
    fig01_motivation,
    fig07_firmware,
    fig12_interleaving_timing,
    fig13_schedulers,
    fig15_bandwidth,
    fig16_exec_time,
    fig17_energy,
    fig18_19_ipc,
    fig20_21_power,
    reliability,
    service_sweeps,
    tables,
)

#: name -> (description, callable(config) -> report string)
EXPERIMENTS: typing.Dict[str, typing.Tuple[str, typing.Callable]] = {
    "tables": ("Tables I-III: configuration parameters",
               lambda config: tables.report()),
    "fig01": ("Figure 1: conventional vs ideal (perf/energy)",
              lambda config: fig01_motivation.report(
                  fig01_motivation.run(config))),
    "fig07": ("Figure 7: firmware vs oracle controller",
              lambda config: fig07_firmware.report(
                  fig07_firmware.run(config))),
    "fig12": ("Figure 12: interleaving timing overlap",
              lambda config: fig12_interleaving_timing.report(
                  fig12_interleaving_timing.run())),
    "fig13": ("Figure 13: the four subsystem schedulers",
              lambda config: fig13_schedulers.report(
                  fig13_schedulers.run(config))),
    "fig15": ("Figure 15: normalized throughput, ten systems",
              lambda config: fig15_bandwidth.report(
                  fig15_bandwidth.run(config))),
    "fig16": ("Figure 16: execution-time decomposition",
              lambda config: fig16_exec_time.report(
                  fig16_exec_time.run(config))),
    "fig17": ("Figure 17: energy decomposition",
              lambda config: fig17_energy.report(
                  fig17_energy.run(config))),
    "fig18": ("Figure 18: IPC time series, gemver",
              lambda config: fig18_19_ipc.report(
                  fig18_19_ipc.run_figure18(config))),
    "fig19": ("Figure 19: IPC time series, doitg",
              lambda config: fig18_19_ipc.report(
                  fig18_19_ipc.run_figure19(config))),
    "fig20": ("Figure 20: power/energy capture, gemver",
              lambda config: fig20_21_power.report(
                  fig20_21_power.run_figure20(config))),
    "fig21": ("Figure 21: power/energy capture, doitg",
              lambda config: fig20_21_power.report(
                  fig20_21_power.run_figure21(config))),
    "endurance": ("Reliability: bandwidth + error rate vs wear "
                  "(endurance sweep)",
                  lambda config: reliability.report(
                      reliability.run(config))),
    "overload": ("Service: goodput under 0.5x-10x offered load "
                 "(graceful degradation)",
                 lambda config: service_sweeps.report_overload(
                     service_sweeps.run_overload(config))),
    "burst_absorption": ("Service: arrival processes x queue depths "
                         "(burst absorption)",
                         lambda config: service_sweeps.report_burst(
                             service_sweeps.run_burst(config))),
    "tenant_isolation": ("Service: rogue tenant vs per-tenant "
                         "admission queues (SLO isolation)",
                         lambda config: service_sweeps.report_isolation(
                             service_sweeps.run_isolation(config))),
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the DRAM-less paper's tables and figures.")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_parser = sub.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment",
                            help="experiment id (see 'list') or 'all'")
    run_parser.add_argument("--scale", type=float, default=0.25,
                            help="footprint scale factor (default 0.25)")
    run_parser.add_argument("--seed", type=int, default=1,
                            help="trace seed (default 1)")
    run_parser.add_argument("--quick", action="store_true",
                            help="tiny two-workload configuration")
    run_parser.add_argument("--backend", choices=list(BACKENDS),
                            default="interpreted",
                            help="execution backend: 'compiled' runs "
                                 "eligible request streams through the "
                                 "flat-loop kernel (byte-identical "
                                 "results, recorded fallbacks); default "
                                 "'interpreted'")
    run_parser.add_argument("--faults", metavar="PLAN", default=None,
                            help="seeded fault-injection plan as "
                                 "key=value,... (e.g. 'seed=7,"
                                 "read_flip=0.001,program_fail=0.01,"
                                 "endurance=64'); default: fault-free")
    run_parser.add_argument("--service", metavar="PLAN", default=None,
                            help="service-layer traffic plan for the "
                                 "overload/burst_absorption/"
                                 "tenant_isolation experiments as "
                                 "key=value,... (e.g. 'seed=3,"
                                 "tenants=12,arrival=mmpp,rate=5e6,"
                                 "deadline=40000'); default: built-in "
                                 "plan")
    run_parser.add_argument("--jobs", type=int, default=1, metavar="N",
                            help="shard the chosen experiments across N "
                                 "worker processes (default 1: serial)")
    run_parser.add_argument("--cache", nargs="?", metavar="DIR",
                            default=None, const=parallel.DEFAULT_CACHE_DIR,
                            help="replay unchanged experiments from the "
                                 "content-addressed result cache "
                                 f"(default dir {parallel.DEFAULT_CACHE_DIR})")
    run_parser.add_argument("--results", metavar="DIR", default=None,
                            help="also write each report to DIR/<name>.txt "
                                 "under a provenance header")
    run_parser.add_argument("--trace", metavar="OUT.json", default=None,
                            help="write a Perfetto/Chrome trace of the "
                                 "run to this file")
    run_parser.add_argument("--spans", metavar="OUT.jsonl", default=None,
                            help="write a JSON-lines span log of the run "
                                 "to this file")
    run_parser.add_argument("--metrics", action="store_true",
                            help="print the metrics summary table after "
                                 "the reports")
    run_parser.add_argument("--timeseries", metavar="OUT", default=None,
                            help="sample windowed time series during the "
                                 "run and export them to OUT (.json, or "
                                 ".csv for long-format rows); view with "
                                 "'python -m repro.telemetry watch OUT'")
    run_parser.add_argument("--window", type=float, metavar="NS",
                            default=DEFAULT_WINDOW_NS,
                            help="sampling window width in simulated ns "
                                 f"(default {DEFAULT_WINDOW_NS:g})")
    run_parser.add_argument("--profile", action="store_true",
                            help="print a latency-attribution and "
                                 "utilization profile per experiment")
    run_parser.add_argument("--report", metavar="OUT.html", default=None,
                            help="write a self-contained HTML profile "
                                 "dashboard to this file")
    run_parser.add_argument("--hostprof", metavar="OUT", default=None,
                            help="profile host wall-clock per (component, "
                                 "process, phase, event-kind) bucket and "
                                 "export a flamegraph to OUT (speedscope "
                                 "JSON; .collapsed/.txt for collapsed "
                                 "stacks); view with 'python -m "
                                 "repro.telemetry flame OUT'")
    return parser


#: argv[0] values that are real subcommands; anything else is treated
#: as an experiment id with an implicit leading "run".
_SUBCOMMANDS = frozenset({"list", "run"})


def normalize_argv(
        argv: typing.Sequence[str]) -> typing.List[str]:
    """Insert the implicit ``run`` subcommand when it was omitted."""
    argv = list(argv)
    if argv and not argv[0].startswith("-") and argv[0] not in _SUBCOMMANDS:
        argv.insert(0, "run")
    return argv


def config_from_args(args: argparse.Namespace) -> runner.ExperimentConfig:
    """Translate CLI flags into an ExperimentConfig."""
    backend = getattr(args, "backend", "interpreted")
    service = getattr(args, "service", None)
    if args.quick:
        return runner.ExperimentConfig(
            scale=0.05, seed=args.seed, agents=3,
            workloads=("gemver", "doitg"), faults=args.faults,
            backend=backend, service=service)
    return runner.ExperimentConfig(scale=args.scale, seed=args.seed,
                                   faults=args.faults, backend=backend,
                                   service=service)


def _run_sharded(chosen: typing.List[str],
                 config: runner.ExperimentConfig,
                 args: argparse.Namespace,
                 telemetry: typing.Optional[Telemetry],
                 want_spans: bool,
                 profiles: typing.List[typing.Any]
                 ) -> typing.Dict[str, str]:
    """The ``--jobs``/``--cache`` path: shard experiments, merge back.

    Fragments merge into the session telemetry one experiment at a
    time, in experiment order, so per-experiment profiles and the
    merged trace match a serial run.
    """
    if telemetry is None:
        run = parallel.run_experiments_parallel(
            chosen, config, jobs=args.jobs, cache_dir=args.cache)
        return run.reports
    with telemetry.activate():
        run = parallel.run_experiments_parallel(
            chosen, config, jobs=args.jobs, cache_dir=args.cache,
            merge_into_ambient=False)
    for name in chosen:
        outcome = run.outcomes[name]
        mark = len(telemetry.tracer.spans)
        overlap_counter = telemetry.metrics.counter(
            "sched.interleave.overlap_ns")
        overlap_before = overlap_counter.value
        parallel.merge_outcome(outcome, telemetry.metrics,
                               telemetry.tracer)
        if want_spans:
            profiles.append(build_profile(
                name, telemetry.tracer.spans[mark:],
                overlap_total_ns=(overlap_counter.value
                                  - overlap_before)))
    return run.reports


def main(argv: typing.Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    args = build_parser().parse_args(normalize_argv(argv))
    if args.command == "list":
        for name, (description, _) in EXPERIMENTS.items():
            print(f"{name:8s} {description}")
        return 0
    chosen = (list(EXPERIMENTS) if args.experiment == "all"
              else [name for name in args.experiment.split(",") if name])
    unknown = [name for name in chosen if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}; "
              f"try 'list'", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    config = config_from_args(args)
    if config.faults is not None:
        # Validate the plan up front so a typo fails in milliseconds,
        # not after the first experiment has simulated for minutes.
        try:
            config.fault_config()
        except ValueError as exc:
            print(f"invalid --faults plan: {exc}", file=sys.stderr)
            return 2
    if config.service is not None:
        # Same up-front validation as --faults: a bad arrival rate or
        # deadline names its field now, not minutes into a sweep.
        try:
            config.service_config()
        except ValueError as exc:
            print(f"invalid --service plan: {exc}", file=sys.stderr)
            return 2
    if args.timeseries is not None and not args.window > 0:
        print(f"--window must be > 0, got {args.window}", file=sys.stderr)
        return 2
    # --metrics alone keeps the null-tracer fast path (record_spans
    # False leaves the ambient tracer null); any span consumer turns
    # recording on.  --timeseries needs the metrics registry (samples
    # land in registry series), so it implies telemetry too.
    want_spans = bool(args.trace or args.spans or args.profile
                      or args.report)
    sampling = (SamplingConfig(window_ns=args.window)
                if args.timeseries is not None else None)
    telemetry = (Telemetry(record_spans=want_spans, timeseries=sampling)
                 if want_spans or args.metrics or sampling is not None
                 else None)
    # The profiler is both collector and ambient provider: serial runs
    # feed it directly via the hook; sharded runs capture per-worker
    # fragments and merge_outcome folds them into this same instance.
    hostprof = HostProfiler() if args.hostprof is not None else None
    profiles = []
    reports: typing.Dict[str, str] = {}
    with (use_hostprof(hostprof) if hostprof is not None
          else contextlib.nullcontext()):
        if args.jobs != 1 or args.cache is not None:
            reports = _run_sharded(chosen, config, args, telemetry,
                                   want_spans, profiles)
            for name in chosen:
                print(reports[name])
                print()
        else:
            for name in chosen:
                _, run_fn = EXPERIMENTS[name]
                # Same cell boundary as the sharded workers: request ids
                # restart per experiment (and per matrix cell within it).
                reset_request_ids()
                if telemetry is not None:
                    mark = len(telemetry.tracer.spans)
                    overlap_counter = telemetry.metrics.counter(
                        "sched.interleave.overlap_ns")
                    overlap_before = overlap_counter.value
                    with telemetry.activate(), \
                            telemetry.tracer.scope(name), \
                            use_backend(config.backend):
                        report = run_fn(config)
                    if want_spans:
                        # The counter is cumulative across experiments;
                        # the profile wants this experiment's
                        # contribution only.
                        profiles.append(build_profile(
                            name, telemetry.tracer.spans[mark:],
                            overlap_total_ns=(overlap_counter.value
                                              - overlap_before)))
                else:
                    with use_backend(config.backend):
                        report = run_fn(config)
                reports[name] = report
                print(report)
                print()
    if args.results is not None:
        for name in chosen:
            parallel.write_result(
                args.results, parallel.RESULT_NAMES.get(name, name),
                reports[name], config)
        print(f"reports written to {args.results}")
    if telemetry is not None:
        if args.trace:
            telemetry.write_trace(args.trace)
            print(f"perfetto trace written to {args.trace}")
        if args.spans:
            telemetry.write_spanlog(args.spans)
            print(f"span log written to {args.spans}")
        if args.timeseries:
            telemetry.write_timeseries(args.timeseries)
            print(f"time series written to {args.timeseries}")
        if args.profile:
            for profile in profiles:
                print(render_text(profile))
                print()
        if args.report:
            timeseries_doc = (telemetry.timeseries_document()
                              if sampling is not None else None)
            hostprof_doc = (hostprof.to_payload()
                            if hostprof is not None else None)
            with open(args.report, "w", encoding="utf-8") as handle:
                handle.write(render_html(profiles,
                                         timeseries=timeseries_doc,
                                         hostprof=hostprof_doc))
            print(f"profile dashboard written to {args.report}")
        if args.metrics:
            print("metrics summary")
            print(telemetry.summary())
    if hostprof is not None:
        kind = write_hostprof(hostprof, args.hostprof)
        print(f"host profile ({kind}) written to {args.hostprof}")
        print(render_summary(hostprof))
    return 0


if __name__ == "__main__":
    sys.exit(main())
