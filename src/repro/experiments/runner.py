"""Shared experiment configuration and execution matrix.

Telemetry is ambient: run any of this (``run_matrix`` included) inside
``Telemetry().activate()`` — or pass ``--trace``/``--metrics`` to the
CLI — and every simulator, channel, PE and link built during the runs
records into the active tracer/registry; no extra plumbing here.
"""

from __future__ import annotations

import dataclasses
import os
import typing

from repro.accel import AcceleratorConfig
from repro.controller.request import reset_request_ids
from repro.sim import use_backend
from repro.systems import SystemConfig, build_system
from repro.systems.base import ExecutionResult
from repro.workloads import all_workloads, generate_traces, workload
from repro.workloads.trace import TraceBundle

if typing.TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.faults.plan import FaultConfig
    from repro.service.config import ServiceConfig

#: The 15 evaluated workloads in the figures' plotting order.
EVAL_WORKLOADS: typing.Tuple[str, ...] = tuple(
    spec.name for spec in all_workloads())


@dataclasses.dataclass(frozen=True)
class ExperimentConfig:
    """Evaluation knobs shared by every experiment.

    The default scale (0.25 of the reference footprints) with shrunken
    caches keeps footprint >> cache — the regime the paper's >10x
    inflated volumes created — while keeping simulation minutes-scale.
    """

    scale: float = 0.25
    seed: int = 1
    agents: int = 7
    dram_fraction: float = 0.4
    l1_bytes: int = 2 * 1024
    l2_bytes: int = 16 * 1024
    workloads: typing.Tuple[str, ...] = EVAL_WORKLOADS
    #: Optional ``--faults`` plan spec (``key=value,...``); None runs
    #: fault-free.  Kept as the raw string so the config stays
    #: trivially hashable for the parallel runner's cache key.
    faults: typing.Optional[str] = None
    #: Execution backend every cell runs under ("interpreted" or
    #: "compiled").  Part of the config, so it enters the parallel
    #: runner's content-addressed cache key: a compiled rerun never
    #: replays an interpreted entry (and vice versa), even though the
    #: two are byte-identical by contract.
    backend: str = "interpreted"
    #: Optional ``--service`` plan spec (``key=value,...``); None lets
    #: the service experiments use their built-in default plan.  Kept
    #: as the raw string (like ``faults``) so the config stays
    #: trivially hashable — and, because the parallel runner keys its
    #: cache on ``dataclasses.asdict(config)``, two runs with
    #: different service plans (or seeds) can never replay each
    #: other's cached cells.
    service: typing.Optional[str] = None

    def system_config(self) -> SystemConfig:
        """SystemConfig this experiment runs under."""
        return SystemConfig(
            accelerator=AcceleratorConfig(l1_bytes=self.l1_bytes,
                                          l2_bytes=self.l2_bytes),
            dram_fraction=self.dram_fraction,
            faults=self.fault_config())

    def fault_config(self) -> typing.Optional["FaultConfig"]:
        """Parsed fault plan, or None when running fault-free."""
        if self.faults is None:
            return None
        from repro.faults.plan import FaultConfig
        return FaultConfig.parse(self.faults)

    def service_config(self) -> typing.Optional["ServiceConfig"]:
        """Parsed service plan, or None when no ``--service`` given."""
        if self.service is None:
            return None
        from repro.service.config import ServiceConfig
        return ServiceConfig.parse(self.service)

    def bundle(self, name: str,
               rounds: int | None = None) -> TraceBundle:
        """Deterministic trace bundle for one workload."""
        return generate_traces(workload(name), agents=self.agents,
                               scale=self.scale, seed=self.seed,
                               rounds=rounds)


#: Fast configuration for unit tests of the experiment modules.
QUICK = ExperimentConfig(scale=0.05, agents=3,
                         workloads=("gemver", "doitg"))


def require_cells(workloads: typing.Sequence[str],
                  systems: typing.Sequence[str]) -> None:
    """Reject an empty execution matrix, naming the offending axis.

    An empty axis would silently produce an empty matrix (and empty
    figures downstream); fail loudly with the matrix key instead.
    """
    if not workloads:
        raise ValueError(
            "run_matrix: empty cell list on matrix key 'workloads' — "
            "nothing to run")
    if not systems:
        raise ValueError(
            "run_matrix: empty cell list on matrix key 'systems' — "
            "nothing to run")


def run_matrix(config: ExperimentConfig,
               systems: typing.Sequence[str],
               workloads: typing.Sequence[str] | None = None,
               *,
               jobs: int = 1,
               cache_dir: typing.Union[str, "os.PathLike[str]", None] = None,
               ) -> typing.Dict[str, typing.Dict[str, ExecutionResult]]:
    """Run every (workload, system) pair.

    Returns ``matrix[workload][system] -> ExecutionResult``.

    ``jobs`` > 1 shards the cells across a process pool and merges the
    per-cell results and telemetry deterministically (cell-key order,
    so the output is identical to a serial run); ``cache_dir`` enables
    the content-addressed result cache so unchanged cells are replayed
    instead of re-simulated.  Both paths live in
    :mod:`repro.experiments.parallel`.
    """
    chosen = tuple(workloads) if workloads is not None else config.workloads
    require_cells(chosen, systems)
    if jobs != 1 or cache_dir is not None:
        from repro.experiments import parallel
        return parallel.run_matrix_parallel(
            config, systems, chosen, jobs=jobs, cache_dir=cache_dir).matrix
    system_config = config.system_config()
    matrix: typing.Dict[str, typing.Dict[str, ExecutionResult]] = {}
    with use_backend(config.backend):
        for workload_name in chosen:
            bundle = config.bundle(workload_name)
            row = {}
            for system_name in systems:
                # Cell-local request numbering: parallel workers reset at
                # the same boundary, so span ``req`` tags match exactly.
                reset_request_ids()
                system = build_system(system_name, system_config)
                row[system_name] = system.run(bundle)
            matrix[workload_name] = row
    return matrix


def format_table(headers: typing.Sequence[str],
                 rows: typing.Sequence[typing.Sequence[object]]) -> str:
    """Render an aligned text table."""
    table = [list(map(_cell, headers))] + [
        list(map(_cell, row)) for row in rows
    ]
    widths = [max(len(row[col]) for row in table)
              for col in range(len(headers))]
    lines = []
    for index, row in enumerate(table):
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths)).rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)


def geometric_mean(values: typing.Sequence[float],
                   key: str = "") -> float:
    """Geometric mean (the figures' "on average" aggregations).

    ``key`` names the matrix row/column being aggregated so an empty
    cell list fails with the offending key, not a bare message.
    """
    if not values:
        raise ValueError(
            f"geometric mean of an empty cell list"
            f"{f' for matrix key {key!r}' if key else ''}")
    if any(value <= 0 for value in values):
        raise ValueError("geometric mean requires positive values")
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))
