"""Overload-family experiments on the service layer.

Three sweeps exercise the scenario family the figure reproductions
cannot express — what the served system does when offered load is not
a polite closed-loop batch:

* ``overload`` — a seeded saturation probe measures the subsystem's
  sustainable request rate, then the front end is offered multiples of
  it (0.5x to 10x).  Graceful degradation means goodput holds near the
  saturation plateau while the *excess* is shed or expired with
  bounded queues — never congestion collapse.
* ``burst_absorption`` — the three arrival processes (Poisson, bursty
  MMPP, diurnal) crossed with admission-queue depths at a fixed 0.8x
  load, showing how much queue is needed to absorb bursts into
  latency rather than shed.
* ``tenant_isolation`` — one misbehaving tenant offers many times its
  fair share; per-tenant bounded queues (the isolated arm) must keep
  every *compliant* class's goodput p99 within its SLO, while the
  shared-FIFO contrast arm shows what the isolation is buying.

All service behaviour is seeded-deterministic, so these sweeps run
byte-identically serial and under ``--jobs N`` through the fragment
merge, and their reports cache content-addressed like every other
experiment.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.controller import PramSubsystem, SchedulerPolicy
from repro.controller.request import MemoryRequest, Op
from repro.experiments.runner import ExperimentConfig, format_table
from repro.faults.plan import FaultConfig
from repro.service.config import ARRIVAL_KINDS, ServiceConfig
from repro.service.frontend import ServiceFrontend, ServiceResult
from repro.service.summary import outcome_summary
from repro.sim import Simulator

#: Offered-load multipliers over the sustainable rate, overload last.
OVERLOAD_MULTIPLIERS: typing.Tuple[float, ...] = (0.5, 1.0, 2.0, 5.0, 10.0)

#: Admission-queue depths crossed with the arrival kinds.
BURST_QUEUE_DEPTHS: typing.Tuple[int, ...] = (4, 16)

#: Graceful-degradation bar: goodput at 10x offered load must stay
#: within 20% of the saturation plateau.
COLLAPSE_THRESHOLD = 0.8

#: Requests in the open-loop saturation probe batch.
PROBE_REQUESTS = 96


def base_plan(config: ExperimentConfig) -> ServiceConfig:
    """The service plan the sweeps vary.

    ``--service`` overrides every knob; without it a representative
    default is used, with the traffic window scaled alongside the
    experiment footprint scale so ``--quick`` stays quick.
    """
    plan = config.service_config()
    if plan is not None:
        return plan
    duration = max(20_000.0, 200_000.0 * (config.scale / 0.25))
    return ServiceConfig(seed=config.seed, duration_ns=duration)


def probe_requests(plan: ServiceConfig) -> typing.List[MemoryRequest]:
    """A deterministic request batch shaped like the service traffic."""
    slots = max(1, plan.footprint_bytes // plan.request_bytes)
    size = plan.request_bytes
    requests = []
    for index in range(PROBE_REQUESTS):
        address = (index % slots) * size
        if index % 4 == 3:
            requests.append(MemoryRequest(Op.WRITE, address, size,
                                          data=b"\x5A" * size))
        else:
            requests.append(MemoryRequest(Op.READ, address, size))
    return requests


def sustainable_rate_rps(plan: ServiceConfig,
                         faults: typing.Optional[FaultConfig]) -> float:
    """Saturation probe: the subsystem's sustainable request rate.

    Submits one open-loop batch through ``run_stream`` (full overlap,
    no admission layer) and reads the achieved completion rate off the
    makespan — the plateau the overload sweep's goodput is judged
    against.
    """
    sim = Simulator()
    subsystem = PramSubsystem(sim, policy=SchedulerPolicy.FINAL,
                              faults=faults)
    subsystem.run_stream(probe_requests(plan), mode="open")
    return PROBE_REQUESTS / sim.now * 1e9


def run_service(plan: ServiceConfig,
                faults: typing.Optional[FaultConfig]) -> ServiceResult:
    """One service run: fresh simulator, subsystem, and front end."""
    sim = Simulator()
    subsystem = PramSubsystem(sim, policy=SchedulerPolicy.FINAL,
                              faults=faults)
    return ServiceFrontend(sim, subsystem, plan).run()


def _brownout_fraction(result: ServiceResult) -> float:
    """Fraction of the run spent with any brownout shedding active."""
    total = sum(result.brownout_ns.values())
    if total <= 0.0:
        return 0.0
    shed = sum(ns for level, ns in result.brownout_ns.items() if level)
    return shed / total


# ----------------------------------------------------------------------
# overload
# ----------------------------------------------------------------------
def run_overload(config: ExperimentConfig = ExperimentConfig()
                 ) -> typing.Dict[str, typing.Any]:
    """Sweep offered load from half to ten times the sustainable rate."""
    plan = base_plan(config)
    faults = config.fault_config()
    rate_max = sustainable_rate_rps(plan, faults)
    rows = []
    for multiplier in OVERLOAD_MULTIPLIERS:
        swept = dataclasses.replace(plan,
                                    rate_rps=rate_max * multiplier)
        result = run_service(swept, faults)
        rows.append({"multiplier": multiplier, "result": result})
    return {"plan": plan, "rate_max_rps": rate_max, "rows": rows}


def report_overload(result: typing.Dict[str, typing.Any]) -> str:
    """Text rendering of the overload sweep (the CI SLO table)."""
    headers = ["offered/max", "offered", "goodput", "goodput rps",
               "shed", "timeout", "failed", "p99 ns", "brownout"]
    table_rows = []
    for row in result["rows"]:
        service: ServiceResult = row["result"]
        totals = service.totals()
        merged = service.merged_sketch()
        p99 = merged.percentile(0.99) if merged.count else float("nan")
        table_rows.append([
            f"{row['multiplier']:g}x", service.offered, service.goodput,
            service.goodput_rps, int(totals["shed"]),
            int(totals["timeout"]), int(totals["failed"]), p99,
            f"{_brownout_fraction(service):.0%}"])
    table = format_table(headers, table_rows)
    saturated = max(
        (row for row in result["rows"] if row["multiplier"] >= 1.0),
        key=lambda row: row["result"].goodput_rps)
    overloaded = result["rows"][-1]["result"]
    plateau = saturated["result"].goodput_rps
    ratio = overloaded.goodput_rps / plateau if plateau > 0 else 0.0
    verdict = ("graceful degradation"
               if ratio >= COLLAPSE_THRESHOLD else "congestion collapse")
    class_lines = []
    for name, cls_stats in overloaded.class_stats().items():
        counts = {
            "ok": float(cls_stats.ok),
            "corrected": float(cls_stats.corrected),
            "degraded": float(cls_stats.degraded),
            "shed": float(cls_stats.shed),
            "timeout": float(cls_stats.timeout),
            "failed": float(cls_stats.failed),
        }
        class_lines.append(
            f"  {name:8s} offered={cls_stats.offered}  "
            f"{outcome_summary(counts, include_ok=True)}")
    summary = (
        f"service seed: {result['plan'].seed}, arrival: "
        f"{result['plan'].arrival}, sustainable rate: "
        f"{result['rate_max_rps']:.3g} rps\n"
        f"per-class outcomes at "
        f"{result['rows'][-1]['multiplier']:g}x offered load:\n"
        + "\n".join(class_lines) + "\n"
        f"goodput at {result['rows'][-1]['multiplier']:g}x = "
        f"{ratio:.0%} of saturation plateau "
        f"(threshold {COLLAPSE_THRESHOLD:.0%}): {verdict}")
    return f"Service: overload sweep\n{table}\n{summary}"


# ----------------------------------------------------------------------
# burst_absorption
# ----------------------------------------------------------------------
def run_burst(config: ExperimentConfig = ExperimentConfig()
              ) -> typing.Dict[str, typing.Any]:
    """Cross arrival processes with queue depths at 0.8x saturation."""
    plan = base_plan(config)
    faults = config.fault_config()
    rate_max = sustainable_rate_rps(plan, faults)
    rows = []
    for arrival in ARRIVAL_KINDS:
        for depth in BURST_QUEUE_DEPTHS:
            swept = dataclasses.replace(
                plan, arrival=arrival, queue_depth=depth,
                rate_rps=0.8 * rate_max)
            result = run_service(swept, faults)
            rows.append({"arrival": arrival, "queue_depth": depth,
                         "result": result})
    return {"plan": plan, "rate_max_rps": rate_max, "rows": rows}


def report_burst(result: typing.Dict[str, typing.Any]) -> str:
    """Text rendering of the burst-absorption grid."""
    headers = ["arrival", "queue", "offered", "goodput", "shed",
               "timeout", "p99 ns", "brownout"]
    table_rows = []
    for row in result["rows"]:
        service: ServiceResult = row["result"]
        totals = service.totals()
        merged = service.merged_sketch()
        p99 = merged.percentile(0.99) if merged.count else float("nan")
        table_rows.append([
            row["arrival"], row["queue_depth"], service.offered,
            service.goodput, int(totals["shed"]),
            int(totals["timeout"]), p99,
            f"{_brownout_fraction(service):.0%}"])
    table = format_table(headers, table_rows)
    summary = (
        f"service seed: {result['plan'].seed}, offered rate: 0.8x "
        f"sustainable ({result['rate_max_rps']:.3g} rps); deeper "
        f"queues absorb bursts into latency instead of shedding")
    return f"Service: burst absorption\n{table}\n{summary}"


# ----------------------------------------------------------------------
# tenant_isolation
# ----------------------------------------------------------------------
def run_isolation(config: ExperimentConfig = ExperimentConfig()
                  ) -> typing.Dict[str, typing.Any]:
    """One rogue tenant vs per-tenant queues and a shared FIFO."""
    plan = base_plan(config)
    faults = config.fault_config()
    rate_max = sustainable_rate_rps(plan, faults)
    rogue = dataclasses.replace(
        plan, rate_rps=0.6 * rate_max,
        rogue_tenants=max(1, plan.rogue_tenants))
    arms = []
    for name, shared in (("isolated", 0), ("shared", 1)):
        swept = dataclasses.replace(rogue, shared_queue=shared)
        result = run_service(swept, faults)
        arms.append({"arm": name, "result": result})
    return {"plan": plan, "rate_max_rps": rate_max, "arms": arms}


def report_isolation(result: typing.Dict[str, typing.Any]) -> str:
    """Text rendering of the isolation contrast."""
    headers = ["arm", "class", "offered", "goodput", "shed", "timeout",
               "p99 ns", "SLO ns", "within SLO"]
    table_rows = []
    isolated_ok = True
    for arm in result["arms"]:
        service: ServiceResult = arm["result"]
        compliant = service.class_stats(compliant_only=True)
        for name, cls_stats in compliant.items():
            p99 = cls_stats.p99_ns
            table_rows.append([
                arm["arm"], name, cls_stats.offered, cls_stats.goodput,
                cls_stats.shed, cls_stats.timeout,
                "-" if p99 is None else p99, cls_stats.slo_p99_ns,
                "yes" if cls_stats.meets_slo else "NO"])
            if arm["arm"] == "isolated" and not cls_stats.meets_slo:
                isolated_ok = False
    table = format_table(headers, table_rows)
    rogue_count = result["arms"][0]["result"].config.rogue_tenants
    factor = result["arms"][0]["result"].config.rogue_factor
    verdict = ("isolated: compliant classes hold their SLOs under the "
               "rogue tenant"
               if isolated_ok else
               "VIOLATED: a rogue tenant pushed a compliant class past "
               "its SLO despite per-tenant queues")
    summary = (
        f"service seed: {result['plan'].seed}; {rogue_count} rogue "
        f"tenant(s) at {factor:g}x fair share, compliant classes only\n"
        f"{verdict}")
    return f"Service: tenant isolation\n{table}\n{summary}"
