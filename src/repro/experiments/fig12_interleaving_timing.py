"""Figure 12: the multi-resource aware interleaving timeline.

Reproduces the figure's two-request example: req-0 and req-1 target
different partitions of the same chip.  Under interleaving, req-0's
data burst proceeds during req-1's tRP+tRCD, so by the time the burst
finishes, req-1's row is already in its RDB.  The experiment issues
both requests against a real PRAM subsystem under the bare-metal and
interleaving policies and reports the completion times.
"""

from __future__ import annotations

import typing

from repro.controller import MemoryRequest, Op, PramSubsystem, SchedulerPolicy
from repro.pram import PramGeometry
from repro.sim import Simulator

#: Compact geometry (timing-identical; capacity is irrelevant here).
_GEOMETRY = PramGeometry(channels=1, modules_per_channel=1,
                         partitions_per_bank=4, tiles_per_partition=1,
                         bitlines_per_tile=512, wordlines_per_tile=512)


def _partition_stride() -> int:
    geo = _GEOMETRY
    return geo.row_bytes * geo.modules_per_channel * geo.channels


def _run_policy(policy: SchedulerPolicy,
                request_count: int) -> typing.List[float]:
    sim = Simulator()
    subsystem = PramSubsystem(sim, geometry=_GEOMETRY, policy=policy)
    requests = [
        MemoryRequest(Op.READ, i * _partition_stride(), _GEOMETRY.row_bytes)
        for i in range(request_count)
    ]

    def driver():
        pending = [sim.process(subsystem.submit(r)) for r in requests]
        yield sim.all_of(pending)

    sim.process(driver())
    sim.run()
    return [request.complete_time for request in requests]


def run(request_count: int = 4) -> typing.Dict:
    """Returns completion times under both policies plus the overlap."""
    bare = _run_policy(SchedulerPolicy.BARE_METAL, request_count)
    interleaved = _run_policy(SchedulerPolicy.INTERLEAVING, request_count)
    bare_total = max(bare)
    inter_total = max(interleaved)
    return {
        "request_count": request_count,
        "bare_metal_completions_ns": bare,
        "interleaved_completions_ns": interleaved,
        "bare_metal_total_ns": bare_total,
        "interleaved_total_ns": inter_total,
        "hidden_fraction": 1.0 - inter_total / bare_total,
    }


def report(result: typing.Dict) -> str:
    """Text rendering of the figure's data."""
    lines = [
        "Figure 12: multi-resource aware interleaving",
        f"requests to distinct partitions: {result['request_count']}",
        f"bare-metal completion: {result['bare_metal_total_ns']:.1f} ns",
        f"interleaved completion: {result['interleaved_total_ns']:.1f} ns",
        f"latency hidden: {result['hidden_fraction']:.1%} "
        "(paper: interleaving hides access latency ~40%)",
    ]
    return "\n".join(lines)
