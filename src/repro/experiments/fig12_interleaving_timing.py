"""Figure 12: the multi-resource aware interleaving timeline.

Reproduces the figure's two-request example: req-0 and req-1 target
different partitions of the same chip.  Under interleaving, req-0's
data burst proceeds during req-1's tRP+tRCD, so by the time the burst
finishes, req-1's row is already in its RDB.  The experiment issues
both requests against a real PRAM subsystem under the bare-metal and
interleaving policies and reports the completion times.

A second wave re-reads the same rows to demonstrate the three-phase
protocol's buffer hits: the rows are still latched in the RDBs, so
both pre-active and activate are skipped and only the burst remains.
"""

from __future__ import annotations

import contextlib
import typing

from repro.controller import MemoryRequest, Op, PramSubsystem, SchedulerPolicy
from repro.pram import PramGeometry
from repro.sim import Simulator
from repro.telemetry import (
    MetricsRegistry,
    current_metrics,
    current_tracer,
    use_metrics,
)

#: Compact geometry (timing-identical; capacity is irrelevant here).
_GEOMETRY = PramGeometry(channels=1, modules_per_channel=1,
                         partitions_per_bank=4, tiles_per_partition=1,
                         bitlines_per_tile=512, wordlines_per_tile=512)


def _partition_stride() -> int:
    geo = _GEOMETRY
    return geo.row_bytes * geo.modules_per_channel * geo.channels


@contextlib.contextmanager
def _measured() -> typing.Iterator[None]:
    """Guarantee overlap/phase-skip accounting is live for a run.

    The channel only tracks burst/array overlap while telemetry is
    active.  Overlap *is* Figure 12's quantity, so when no ambient
    tracer or metrics registry is installed (plain text runs), a
    throwaway local registry turns the accounting on.  An ambient one
    (``--trace``/``--metrics``) is left in place so its summary sees
    this experiment's counters.
    """
    if current_metrics().enabled or current_tracer().enabled:
        yield
    else:
        with use_metrics(MetricsRegistry()):
            yield


def _requests(request_count: int) -> typing.List[MemoryRequest]:
    return [
        MemoryRequest(Op.READ, i * _partition_stride(), _GEOMETRY.row_bytes)
        for i in range(request_count)
    ]


def _run_policy(policy: SchedulerPolicy,
                request_count: int,
                ) -> typing.Tuple[typing.List[float], float]:
    """One wave of distinct-partition reads under ``policy``.

    Returns the per-request completion times and the burst/array
    overlap the channel observed (non-zero only when telemetry is on).
    """
    with _measured():
        sim = Simulator()
        subsystem = PramSubsystem(sim, geometry=_GEOMETRY, policy=policy)
    requests = _requests(request_count)
    with sim.tracer.scope(f"fig12:{policy.value}"):
        subsystem.run_stream(requests, mode="open")
    overlap_ns = sum(channel.overlap_ns for channel in subsystem.channels)
    return [request.complete_time for request in requests], overlap_ns


def _phase_skip_demo(request_count: int) -> typing.Dict[str, float]:
    """Re-read the same rows: RDB hits skip pre-active and activate.

    A fresh interleaved subsystem serves two identical waves.  The
    first wave senses one row per partition into that partition's RDB;
    with rdb_count >= partitions touched, the second wave hits every
    RDB and pays only the burst.
    """
    with _measured():
        sim = Simulator()
        subsystem = PramSubsystem(sim, geometry=_GEOMETRY,
                                  policy=SchedulerPolicy.INTERLEAVING)
    first = _requests(request_count)
    second = _requests(request_count)
    with sim.tracer.scope("fig12:phase-skip"):
        subsystem.run_stream(first, mode="open")
        mark = sim.now
        subsystem.run_stream(second, mode="open")
        second_wave_ns = sim.now - mark
    channel = subsystem.channels[0]
    return {
        "rab_hits": float(channel.rab_hits),
        "rdb_hits": float(channel.rdb_hits),
        "first_wave_ns": max(r.complete_time for r in first),
        "second_wave_ns": second_wave_ns,
    }


def run(request_count: int = 4) -> typing.Dict:
    """Returns completion times under both policies plus the overlap."""
    bare, _ = _run_policy(SchedulerPolicy.BARE_METAL, request_count)
    interleaved, overlap_ns = _run_policy(SchedulerPolicy.INTERLEAVING,
                                          request_count)
    skips = _phase_skip_demo(request_count)
    bare_total = max(bare)
    inter_total = max(interleaved)
    return {
        "request_count": request_count,
        "bare_metal_completions_ns": bare,
        "interleaved_completions_ns": interleaved,
        "bare_metal_total_ns": bare_total,
        "interleaved_total_ns": inter_total,
        "hidden_fraction": 1.0 - inter_total / bare_total,
        "interleave_overlap_ns": overlap_ns,
        "rdb_hits": skips["rdb_hits"],
        "rab_hits": skips["rab_hits"],
        "first_wave_ns": skips["first_wave_ns"],
        "second_wave_ns": skips["second_wave_ns"],
    }


def report(result: typing.Dict) -> str:
    """Text rendering of the figure's data."""
    lines = [
        "Figure 12: multi-resource aware interleaving",
        f"requests to distinct partitions: {result['request_count']}",
        f"bare-metal completion: {result['bare_metal_total_ns']:.1f} ns",
        f"interleaved completion: {result['interleaved_total_ns']:.1f} ns",
        f"latency hidden: {result['hidden_fraction']:.1%} "
        "(paper: interleaving hides access latency ~40%)",
        f"burst/array overlap observed: "
        f"{result['interleave_overlap_ns']:.1f} ns",
        f"re-read wave: {result['rdb_hits']:.0f} RDB hits skip both "
        f"pre-active and activate "
        f"({result['first_wave_ns']:.1f} ns -> "
        f"{result['second_wave_ns']:.1f} ns)",
    ]
    return "\n".join(lines)
