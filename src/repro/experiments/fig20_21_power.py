"""Figures 20 and 21: core power and cumulative energy, first 16 KB.

The paper captures the first 16 KB of data processing and plots each
system's overall core power over time (a) and total energy (b) for the
read-intensive (gemver, Figure 20) and write-intensive (doitg,
Figure 21) workloads.
"""

from __future__ import annotations

import typing

from repro.accel import AcceleratorConfig
from repro.systems import SystemConfig, build_system
from repro.workloads import generate_traces, workload
from repro.experiments.runner import ExperimentConfig, format_table

#: The systems Figures 20/21 plot.
POWER_SYSTEMS = ("Integrated-SLC", "PAGE-buffer", "NOR-intf", "DRAM-less")

#: Footprint of the captured window: "first 16KB data processing".
CAPTURE_BYTES = 16 * 1024


def run(workload_name: str,
        config: ExperimentConfig = ExperimentConfig(),
        systems: typing.Sequence[str] = POWER_SYSTEMS,
        buckets: int = 32) -> typing.Dict:
    """Returns power series, completion time, and total energy."""
    spec = workload(workload_name)
    # Scale the reference footprint down to a 16 KB capture window.
    scale = CAPTURE_BYTES / (spec.total_kb * 1024)
    bundle = generate_traces(spec, agents=config.agents, scale=scale,
                             seed=config.seed, rounds=1)
    system_config = SystemConfig(
        accelerator=AcceleratorConfig(l1_bytes=config.l1_bytes,
                                      l2_bytes=config.l2_bytes),
        dram_fraction=config.dram_fraction)
    power = {}
    completion = {}
    energy = {}
    for name in systems:
        result = build_system(name, system_config).run(bundle)
        end = result.total_ns
        power[name] = result.core_power.resample(0.0, end, buckets)
        completion[name] = end
        energy[name] = result.energy_mj
    return {
        "workload": workload_name,
        "systems": list(systems),
        "power_series": power,
        "completion_ns": completion,
        "energy_mj": energy,
    }


def run_figure20(config: ExperimentConfig = ExperimentConfig()
                 ) -> typing.Dict:
    """Figure 20: gemver (read-intensive) power/energy capture."""
    return run("gemver", config)


def run_figure21(config: ExperimentConfig = ExperimentConfig()
                 ) -> typing.Dict:
    """Figure 21: doitg (write-intensive) power/energy capture."""
    return run("doitg", config)


def report(result: typing.Dict) -> str:
    """Text rendering: completion time, mean power, total energy."""
    rows = []
    for name in result["systems"]:
        samples = result["power_series"][name]
        mean_power = sum(v for _, v in samples) / len(samples)
        rows.append([name, result["completion_ns"][name] / 1e3,
                     mean_power, result["energy_mj"][name]])
    table = format_table(
        ["system", "completion (us)", "mean core power (W)",
         "total energy (mJ)"], rows)
    from repro.experiments.plot import series_chart

    chart = series_chart(result["power_series"])
    return (f"Figures 20/21: first-16KB capture under "
            f"{result['workload']}\n{table}\n\n"
            f"core power over (each system's own) run time:\n{chart}")
