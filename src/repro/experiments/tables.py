"""Tables I-III: configuration parameters as verifiable structures."""

from __future__ import annotations

import typing

from repro.experiments.runner import format_table
from repro.pram import PramGeometry, PramTimingParams
from repro.storage import FlashCellType
from repro.storage.nor_pram import NOR_READ_32B_NS, NOR_WRITE_32B_NS
from repro.storage.optane import PRAM_SSD_READ_NS
from repro.systems import SYSTEM_NAMES, build_system
from repro.workloads import all_workloads


def table1_configuration() -> typing.List[typing.Dict[str, object]]:
    """Table I: key parameters of every evaluated system."""
    rows = []
    for name in SYSTEM_NAMES:
        system = build_system(name)
        rows.append({
            "system": name,
            "heterogeneous": system.heterogeneous,
            "internal_dram": system.has_internal_dram,
            "nvm_read_us": _nvm_read_us(name),
            "nvm_write_us": _nvm_write_us(name),
        })
    return rows


def _nvm_read_us(name: str) -> float:
    if name in ("Hetero", "Heterodirect"):
        return FlashCellType.MLC.read_ns / 1e3
    if name in ("Hetero-PRAM", "Heterodirect-PRAM"):
        return PRAM_SSD_READ_NS / 1e3
    if name == "NOR-intf":
        return NOR_READ_32B_NS / 1e3
    if name.startswith("Integrated"):
        cell = FlashCellType[name.split("-")[1]]
        return cell.read_ns / 1e3
    return 0.1  # PAGE-buffer and DRAM-less: the 3x nm PRAM


def _nvm_write_us(name: str) -> float:
    params = PramTimingParams()
    if name in ("Hetero", "Heterodirect"):
        return FlashCellType.MLC.program_ns / 1e3
    if name in ("Hetero-PRAM", "Heterodirect-PRAM"):
        return params.write_pristine_ns / 1e3
    if name == "NOR-intf":
        return NOR_WRITE_32B_NS / 1e3
    if name.startswith("Integrated"):
        cell = FlashCellType[name.split("-")[1]]
        return cell.program_ns / 1e3
    return params.write_pristine_ns / 1e3


def table2_pram_parameters() -> typing.Dict[str, object]:
    """Table II: the characterized PRAM parameters."""
    params = PramTimingParams()
    geometry = PramGeometry()
    return {
        "RL_cycles": params.read_latency_cycles,
        "WL_cycles": params.write_latency_cycles,
        "tCK_ns": params.tck_ns,
        "tRP_cycles": params.trp_cycles,
        "tRCD_ns": params.trcd_ns,
        "tDQSCK_ns": params.tdqsck_ns,
        "tDQSS_ns": params.tdqss_ns,
        "tWR_ns": params.twr_ns,
        "burst_length": params.burst_length,
        "RAB": geometry.rab_count,
        "RDB": geometry.rdb_count,
        "RDB_bytes": geometry.row_bytes,
        "channels": geometry.channels,
        "packages": geometry.modules_per_channel,
        "partitions": geometry.partitions_per_bank,
        "write_us": (params.write_pristine_ns / 1e3,
                     params.write_overwrite_ns / 1e3),
    }


def table3_workloads() -> typing.List[typing.Dict[str, object]]:
    """Table III: workload characteristics."""
    rows = []
    for spec in all_workloads():
        rows.append({
            "workload": spec.name,
            "category": spec.category.value,
            "input_kb": spec.input_kb,
            "output_kb": spec.output_kb,
            "write_ratio": round(spec.write_ratio, 3),
            "ops_per_byte": spec.compute_ops_per_byte,
            "kernel_rounds": spec.kernel_rounds,
        })
    return rows


def report() -> str:
    """All three tables rendered as text."""
    sections = []
    rows1 = table1_configuration()
    sections.append("Table I: evaluated systems")
    sections.append(format_table(
        list(rows1[0].keys()),
        [list(row.values()) for row in rows1]))
    t2 = table2_pram_parameters()
    sections.append("\nTable II: PRAM parameters")
    sections.append(format_table(["parameter", "value"],
                                 [[k, str(v)] for k, v in t2.items()]))
    rows3 = table3_workloads()
    sections.append("\nTable III: workloads")
    sections.append(format_table(
        list(rows3[0].keys()),
        [list(row.values()) for row in rows3]))
    return "\n".join(sections)
