"""Experiment harness: one module per table/figure of Section VI.

Each experiment module exposes ``run(config) -> dict`` returning the
rows/series the paper reports, plus a ``report(result) -> str`` that
renders them as the text table the benchmarks print.  The shared
:mod:`~repro.experiments.runner` holds the evaluation configuration
and the system x workload execution matrix.
"""

from repro.experiments.runner import (
    EVAL_WORKLOADS,
    ExperimentConfig,
    format_table,
    run_matrix,
)

__all__ = [
    "EVAL_WORKLOADS",
    "ExperimentConfig",
    "format_table",
    "run_matrix",
]
