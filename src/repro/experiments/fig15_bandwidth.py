"""Figure 15: data-processing throughput of the ten systems vs Hetero.

The paper's headline comparison: every system's bandwidth normalized
to the Hetero baseline across the Polybench suite.  Key claims:
Heterodirect +25% over Hetero; DRAM-less +93%/+47% over
Hetero/Heterodirect; DRAM-less +25% over DRAM-less (firmware); ~64%
over PAGE-buffer's best scenarios.
"""

from __future__ import annotations

import typing

from repro.experiments.runner import (
    ExperimentConfig,
    format_table,
    geometric_mean,
    run_matrix,
)
from repro.systems import SYSTEM_NAMES


def run(config: ExperimentConfig = ExperimentConfig(),
        systems: typing.Sequence[str] = SYSTEM_NAMES,
        matrix: typing.Dict | None = None) -> typing.Dict:
    """Returns the normalized-bandwidth matrix and headline means.

    Pass ``matrix`` (from :func:`run_matrix`) to reuse executions
    shared with Figures 16/17.
    """
    if matrix is None:
        matrix = run_matrix(config, list(systems))
    rows = []
    for workload_name, results in matrix.items():
        baseline = results["Hetero"].bandwidth_mb_s
        rows.append({
            "workload": workload_name,
            **{name: results[name].bandwidth_mb_s / baseline
               for name in systems},
        })
    means = {name: geometric_mean([row[name] for row in rows], key=name)
             for name in systems}
    return {
        "systems": list(systems),
        "rows": rows,
        "means": means,
        "dramless_vs_hetero": means["DRAM-less"] - 1.0,
        "dramless_vs_heterodirect":
            means["DRAM-less"] / means["Heterodirect"] - 1.0,
        "dramless_vs_firmware":
            means["DRAM-less"] / means["DRAM-less (firmware)"] - 1.0,
        "heterodirect_vs_hetero": means["Heterodirect"] - 1.0,
    }


def report(result: typing.Dict) -> str:
    """Text rendering of the figure's data."""
    systems = result["systems"]
    table = format_table(
        ["workload"] + list(systems),
        [[row["workload"]] + [row[name] for name in systems]
         for row in result["rows"]]
        + [["geomean"] + [result["means"][name] for name in systems]])
    summary = (
        f"DRAM-less vs Hetero: +{result['dramless_vs_hetero']:.0%} "
        "(paper: +93%)\n"
        f"DRAM-less vs Heterodirect: "
        f"+{result['dramless_vs_heterodirect']:.0%} (paper: +47%)\n"
        f"DRAM-less vs DRAM-less (firmware): "
        f"+{result['dramless_vs_firmware']:.0%} (paper: +25%)\n"
        f"Heterodirect vs Hetero: "
        f"+{result['heterodirect_vs_hetero']:.0%} (paper: +25%)"
    )
    return f"Figure 15: normalized throughput\n{table}\n{summary}"
