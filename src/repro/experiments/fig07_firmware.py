"""Figure 7: traditional firmware vs an oracle (hardware) controller.

The paper compares a PRAM accelerator whose requests are admitted by
conventional SSD firmware against an oracle environment managing PRAM
with no overhead: firmware degrades the system by up to 80% on
data-intensive workloads.
"""

from __future__ import annotations

import typing

from repro.experiments.runner import (
    ExperimentConfig,
    format_table,
    geometric_mean,
    run_matrix,
)


def run(config: ExperimentConfig = ExperimentConfig()) -> typing.Dict:
    """Returns per-workload firmware-induced degradation.

    Figure 7's "conventional firmware" is pessimistic: requests are
    *serially* processed (one admission stream), unlike the 3-core
    firmware of the DRAM-less (firmware) system baseline.
    """
    from repro.systems.pram_accel import DramlessSystem

    system_config = config.system_config()
    rows = []
    for name in config.workloads:
        bundle = config.bundle(name)
        oracle = DramlessSystem(system_config).run(bundle)
        firmware = DramlessSystem(
            system_config, firmware=True, firmware_cores=1,
            firmware_instructions=5_000).run(bundle)
        rows.append({
            "workload": name,
            "normalized_performance":
                firmware.bandwidth_mb_s / oracle.bandwidth_mb_s,
        })
    performance = [row["normalized_performance"] for row in rows]
    return {
        "rows": rows,
        "max_degradation": 1.0 - min(performance),
        "mean_degradation": 1.0 - geometric_mean(performance),
    }


def report(result: typing.Dict) -> str:
    """Text rendering of the figure's data."""
    table = format_table(
        ["workload", "firmware perf vs oracle"],
        [[row["workload"], row["normalized_performance"]]
         for row in result["rows"]])
    summary = (
        f"max degradation: {result['max_degradation']:.1%} "
        f"(paper: up to 80%)\n"
        f"mean degradation: {result['mean_degradation']:.1%}"
    )
    return f"Figure 7: firmware bottleneck\n{table}\n{summary}"
