"""Figure 17: energy decomposition of every system.

Headline claims: DRAM-less consumes ~19% of the advanced accelerated
systems' total energy and ~76% less than PAGE-buffer; Hetero spends
most of its energy moving data through the host storage stack.
"""

from __future__ import annotations

import typing

from repro.experiments.runner import (
    ExperimentConfig,
    format_table,
    geometric_mean,
    run_matrix,
)
from repro.systems import SYSTEM_NAMES

CATEGORIES = ("host", "host_dram", "pcie", "dram", "storage", "pram",
              "controller", "pe_compute", "pe_idle")


def run(config: ExperimentConfig = ExperimentConfig(),
        systems: typing.Sequence[str] = SYSTEM_NAMES,
        matrix: typing.Dict | None = None) -> typing.Dict:
    """Returns per-system energy (mJ) and category decompositions."""
    if matrix is None:
        matrix = run_matrix(config, list(systems))
    totals: typing.Dict[str, typing.List[float]] = {
        name: [] for name in systems}
    categories: typing.Dict[str, typing.Dict[str, float]] = {
        name: {category: 0.0 for category in CATEGORIES}
        for name in systems
    }
    rows = []
    for workload_name, results in matrix.items():
        row = {"workload": workload_name}
        for name in systems:
            energy = results[name].energy
            row[name] = energy.total_mj
            totals[name].append(energy.total_mj)
            for category, nanojoules in energy.by_category().items():
                if category in categories[name]:
                    categories[name][category] += nanojoules / 1e6
        rows.append(row)
    mean_mj = {name: geometric_mean(values, key=name)
               for name, values in totals.items()}
    result = {
        "systems": list(systems),
        "rows": rows,
        "mean_mj": mean_mj,
        "category_mj": categories,
    }
    if "DRAM-less" in mean_mj and "Heterodirect" in mean_mj:
        result["dramless_fraction_of_heterodirect"] = (
            mean_mj["DRAM-less"] / mean_mj["Heterodirect"])
    if "DRAM-less" in mean_mj and "PAGE-buffer" in mean_mj:
        result["dramless_fraction_of_pagebuffer"] = (
            mean_mj["DRAM-less"] / mean_mj["PAGE-buffer"])
    return result


def report(result: typing.Dict) -> str:
    """Text rendering of the figure's data."""
    systems = result["systems"]
    table = format_table(
        ["workload"] + list(systems),
        [[row["workload"]] + [row[name] for name in systems]
         for row in result["rows"]]
        + [["geomean"] + [result["mean_mj"][name] for name in systems]])
    decomposition = format_table(
        ["system"] + list(CATEGORIES),
        [[name] + [result["category_mj"][name][c] for c in CATEGORIES]
         for name in systems])
    parts = []
    if "dramless_fraction_of_heterodirect" in result:
        parts.append(
            f"DRAM-less energy vs Heterodirect: "
            f"{result['dramless_fraction_of_heterodirect']:.0%} "
            "(paper: ~19%)")
    if "dramless_fraction_of_pagebuffer" in result:
        parts.append(
            f"DRAM-less energy vs PAGE-buffer: "
            f"{result['dramless_fraction_of_pagebuffer']:.0%} "
            "(paper: ~24%, i.e. 76% less)")
    summary = "\n".join(parts)
    return (f"Figure 17: energy (mJ)\n{table}\n\n"
            f"Per-component totals (mJ, summed over workloads)\n"
            f"{decomposition}\n{summary}")
