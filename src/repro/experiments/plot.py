"""Terminal rendering for time series (the Figures 18-21 curves).

Block-character sparklines: good enough to see the zero-IPC valleys of
the page-granule systems and the sustained line of DRAM-less without
leaving the terminal.
"""

from __future__ import annotations

import typing

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: typing.Sequence[float],
              maximum: float | None = None) -> str:
    """Render values as one line of block characters.

    ``maximum`` fixes the y-scale (shared across series); defaults to
    the series' own max.
    """
    if not values:
        return ""
    top = maximum if maximum is not None else max(values)
    if top <= 0:
        return _BLOCKS[0] * len(values)
    out = []
    for value in values:
        level = min(len(_BLOCKS) - 1,
                    max(0, round(value / top * (len(_BLOCKS) - 1))))
        out.append(_BLOCKS[level])
    return "".join(out)


def series_chart(series: typing.Mapping[str, typing.Sequence[
        typing.Tuple[float, float]]],
        label_width: int = 22) -> str:
    """Render several (time, value) sample lists on a shared y-scale.

    One sparkline row per series, labelled, plus a scale footer.
    """
    if not series:
        return "(no series)"
    peak = max((value for samples in series.values()
                for _, value in samples), default=0.0)
    lines = []
    for name, samples in series.items():
        values = [value for _, value in samples]
        lines.append(f"{name:<{label_width}} "
                     f"{sparkline(values, maximum=peak)}")
    lines.append(f"{'':<{label_width}} scale: 0 .. {peak:.3g}")
    return "\n".join(lines)
