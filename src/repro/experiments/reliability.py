"""Reliability: achieved bandwidth and error rate vs device wear.

The DRAM-less stack keeps working as its 3x-nm PRAM wears out: failed
SET passes are verified and retried (selective-erasing's asymmetry
applied to recovery), single-bit read upsets are corrected by SEC-DED
on the datapath, and rows that exhaust their retries are retired onto
spare rows.  This experiment sweeps the endurance budget — from
effectively-infinite down to a few writes per word — and reports what
that resilience machinery costs and where it stops being enough:
achieved subsystem bandwidth, retry/retirement activity, and the
unrecoverable-request rate.

The sweep replays one workload's block request stream against the
subsystem (the Figure 13 harness) under the FINAL policy, once per
endurance point, with every other fault knob held fixed.  Faults are
drawn from a seeded, site-keyed hash, so the whole sweep is
reproducible bit-for-bit — serially, across repeats, and under the
parallel runner.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.accel.isa import LoadOp, StoreOp
from repro.controller import PramSubsystem, SchedulerPolicy
from repro.experiments.runner import ExperimentConfig, format_table
from repro.faults.plan import FaultConfig
from repro.service.summary import outcome_summary
from repro.sim import Simulator
from repro.systems.base import input_pattern
from repro.workloads.trace import BLOCK_BYTES, TraceBundle

#: Endurance budgets swept, most durable first.  None = wear-free
#: (only the baseline transient fault rates apply).
ENDURANCE_SWEEP: typing.Tuple[typing.Optional[int], ...] = (None, 64, 16, 4)


def base_plan(config: ExperimentConfig) -> FaultConfig:
    """The fault plan whose endurance budget the sweep varies.

    ``--faults`` overrides every knob except the swept budget; without
    it a representative default exercises all fault categories.
    """
    plan = config.fault_config()
    if plan is None:
        plan = FaultConfig(
            seed=config.seed,
            read_flip_probability=5e-4,
            read_double_flip_probability=0.1,
            program_fail_probability=0.01,
            wear_fail_factor=0.5,
            max_program_retries=3,
            retry_backoff_ns=200.0,
            spare_rows_per_partition=4,
        )
    return plan


def replay(bundle: TraceBundle,
           faults: typing.Optional[FaultConfig]) -> typing.Dict[str, float]:
    """Replay ``bundle``'s request stream under one fault plan."""
    sim = Simulator()
    subsystem = PramSubsystem(sim, policy=SchedulerPolicy.FINAL,
                              faults=faults)
    address, size = bundle.input_region
    subsystem.preload(address, input_pattern(address, size))
    total_bytes = 0

    def agent_stream(trace) -> typing.Generator:
        nonlocal total_bytes
        seen_blocks: typing.Set[int] = set()
        for op in trace:
            if isinstance(op, LoadOp):
                block = op.address // BLOCK_BYTES
                if block in seen_blocks:
                    continue  # cache hit: no memory request
                seen_blocks.add(block)
                yield sim.process(subsystem.read(
                    block * BLOCK_BYTES, BLOCK_BYTES))
                total_bytes += BLOCK_BYTES
            elif isinstance(op, StoreOp):
                yield sim.process(subsystem.write(
                    op.address, b"\x5A" * op.size))
                total_bytes += op.size

    def driver() -> typing.Generator:
        for round_traces in bundle.rounds:
            out_address, out_size = bundle.output_region
            subsystem.register_write_hint(out_address, out_size)
            yield sim.process(subsystem.drain_hints())
            agents = [sim.process(agent_stream(trace))
                      for trace in round_traces]
            yield sim.all_of(agents)

    done = sim.process(driver())
    sim.run()
    if not done.ok:
        raise typing.cast(BaseException, done.value)
    counts = subsystem.fault_counts()
    completed = max(1.0, float(subsystem.requests_completed))
    max_wear = max(
        module.cell_tracker(partition).max_writes()
        for channel in subsystem.modules for module in channel
        for partition in range(module.geometry.partitions_per_bank))
    failed = counts.get("requests_failed", 0.0)
    degraded = counts.get("requests_degraded", 0.0)
    corrected = counts.get("requests_corrected", 0.0)
    return {
        "bandwidth_mb_s": total_bytes / sim.now * 1e3,
        "requests": float(subsystem.requests_completed),
        "retries": counts.get("retry_attempts", 0.0),
        "rows_retired": counts.get("rows_retired", 0.0),
        "ecc_corrected": counts.get("ecc_corrected_bits", 0.0),
        "ecc_uncorrectable": counts.get("ecc_uncorrectable", 0.0),
        "corrected": corrected,
        "degraded": degraded,
        "failed": failed,
        "unrecoverable_rate": (failed + degraded) / completed,
        "max_wear": float(max_wear),
    }


def run(config: ExperimentConfig = ExperimentConfig()) -> typing.Dict:
    """Sweep the endurance budget on the first configured workload."""
    name = config.workloads[0]
    bundle = config.bundle(name)
    plan = base_plan(config)
    rows = []
    for budget in ENDURANCE_SWEEP:
        swept = dataclasses.replace(plan, endurance_budget=budget)
        stats = replay(bundle, swept)
        rows.append({"endurance": budget, **stats})
    return {"workload": name, "seed": plan.seed, "rows": rows}


def report(result: typing.Dict) -> str:
    """Text rendering of the sweep."""
    headers = ["endurance", "MB/s", "retries", "rows retired",
               "ecc corrected", "ecc uncorrectable", "unrecoverable",
               "max wear"]
    table = format_table(headers, [
        ["inf" if row["endurance"] is None else row["endurance"],
         row["bandwidth_mb_s"], int(row["retries"]),
         int(row["rows_retired"]), int(row["ecc_corrected"]),
         int(row["ecc_uncorrectable"]),
         f"{row['unrecoverable_rate']:.2%}", int(row["max_wear"])]
        for row in result["rows"]
    ])
    baseline = result["rows"][0]["bandwidth_mb_s"]
    worst = result["rows"][-1]
    slowdown = (1.0 - worst["bandwidth_mb_s"] / baseline
                if baseline > 0 else 0.0)
    outcomes = outcome_summary({
        "corrected": worst["corrected"],
        "degraded": worst["degraded"],
        "failed": worst["failed"],
    })
    summary = (
        f"workload: {result['workload']}, fault seed: {result['seed']}\n"
        f"bandwidth lost at endurance="
        f"{worst['endurance']}: {slowdown:.1%}; unrecoverable requests: "
        f"{worst['unrecoverable_rate']:.2%}\n"
        f"outcomes at endurance={worst['endurance']}: {outcomes}"
    )
    return f"Reliability: endurance sweep\n{table}\n{summary}"
