"""Figures 18 and 19: total-IPC time series.

The paper plots the aggregate IPC of all agent PEs over time under a
read-intensive workload (gemver, Figure 18) and a write-intensive one
(doitg, Figure 19) for the integrated/paged/NOR/DRAM-less systems.
Page-granule systems show zero-IPC valleys while pages move; DRAM-less
sustains IPC throughout.
"""

from __future__ import annotations

import typing

from repro.experiments.runner import ExperimentConfig, format_table
from repro.systems import build_system

#: The systems Figures 18/19 plot.
IPC_SYSTEMS = ("Integrated-SLC", "Integrated-MLC", "Integrated-TLC",
               "PAGE-buffer", "NOR-intf", "DRAM-less")


def run(workload_name: str,
        config: ExperimentConfig = ExperimentConfig(),
        systems: typing.Sequence[str] = IPC_SYSTEMS,
        buckets: int = 40) -> typing.Dict:
    """Returns resampled aggregate-IPC series per system."""
    bundle = config.bundle(workload_name)
    system_config = config.system_config()
    series = {}
    means = {}
    stall_fraction = {}
    for name in systems:
        result = build_system(name, system_config).run(bundle)
        ipc = result.aggregate_ipc
        end = max(result.total_ns, ipc.times[-1] if len(ipc) else 1.0)
        series[name] = ipc.resample(0.0, end, buckets)
        means[name] = ipc.time_weighted_mean(0.0, end)
        zero_time = sum(
            width for (_, value), width in zip(
                series[name], [end / buckets] * buckets)
            if value < 1e-9)
        stall_fraction[name] = zero_time / end
    return {
        "workload": workload_name,
        "systems": list(systems),
        "series": series,
        "mean_ipc": means,
        "stall_fraction": stall_fraction,
    }


def run_figure18(config: ExperimentConfig = ExperimentConfig()
                 ) -> typing.Dict:
    """Figure 18: the read-intensive (gemver) IPC series."""
    return run("gemver", config)


def run_figure19(config: ExperimentConfig = ExperimentConfig()
                 ) -> typing.Dict:
    """Figure 19: the write-intensive (doitg) IPC series."""
    return run("doitg", config)


def report(result: typing.Dict) -> str:
    """Text rendering: mean IPC, idle fractions, and the IPC curves."""
    from repro.experiments.plot import series_chart

    rows = [[name, result["mean_ipc"][name],
             result["stall_fraction"][name]]
            for name in result["systems"]]
    table = format_table(["system", "mean aggregate IPC",
                          "zero-IPC fraction"], rows)
    chart = series_chart(result["series"])
    return (f"Figures 18/19: total IPC under {result['workload']}\n"
            f"{table}\n\nIPC over (each system's own) run time:\n{chart}")
