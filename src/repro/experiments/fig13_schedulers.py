"""Figure 13: bare-metal vs interleaving vs selective-erasing vs final.

Figure 13 is a *memory-subsystem* study: it compares the data
processing bandwidth of the PRAM subsystem under a noop scheduler
(Bare-metal) against the two proposed optimizations and their
combination (Final), driven by the Polybench request streams.  We
extract each workload's block-level memory request stream from its
traces (7 concurrent agents, as many outstanding requests) and replay
it directly against the subsystem — no compute masking.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.accel.isa import LoadOp, StoreOp
from repro.controller import MemoryRequest, Op, PramSubsystem, SchedulerPolicy
from repro.experiments.runner import (
    ExperimentConfig,
    format_table,
    geometric_mean,
)
from repro.sim import LatencySketch, Simulator
from repro.systems.base import input_pattern
from repro.workloads import workload
from repro.workloads.trace import BLOCK_BYTES, TraceBundle

POLICIES = (SchedulerPolicy.BARE_METAL, SchedulerPolicy.INTERLEAVING,
            SchedulerPolicy.SELECTIVE_ERASE, SchedulerPolicy.FINAL)


@dataclasses.dataclass
class SubsystemRun:
    """One policy replay: bandwidth plus the request-latency sketch."""

    mbps: float
    sketch: LatencySketch


def subsystem_run(bundle: TraceBundle,
                  policy: SchedulerPolicy) -> SubsystemRun:
    """Replay ``bundle``'s request streams under ``policy``."""
    sim = Simulator()
    subsystem = PramSubsystem(sim, policy=policy)
    address, size = bundle.input_region
    subsystem.preload(address, input_pattern(address, size))
    total_bytes = 0

    def agent_stream(trace) -> typing.Generator:
        nonlocal total_bytes
        seen_blocks: typing.Set[int] = set()
        for op in trace:
            if isinstance(op, LoadOp):
                block = op.address // BLOCK_BYTES
                if block in seen_blocks:
                    continue  # cache hit: no memory request
                seen_blocks.add(block)
                yield sim.process(subsystem.read(
                    block * BLOCK_BYTES, BLOCK_BYTES))
                total_bytes += BLOCK_BYTES
            elif isinstance(op, StoreOp):
                yield sim.process(subsystem.write(
                    op.address, b"\x5A" * op.size))
                total_bytes += op.size

    def driver() -> typing.Generator:
        for round_traces in bundle.rounds:
            # Section V-A: the pre-resets happen "while the server
            # loads the target kernel" — before the round's request
            # stream.  The drain runs module-parallel and its time
            # counts against the policy.
            out_address, out_size = bundle.output_region
            subsystem.register_write_hint(out_address, out_size)
            yield sim.process(subsystem.drain_hints())
            agents = [sim.process(agent_stream(trace))
                      for trace in round_traces]
            yield sim.all_of(agents)

    done = sim.process(driver())
    sim.run()
    if not done.ok:
        raise typing.cast(BaseException, done.value)
    return SubsystemRun(
        mbps=total_bytes / sim.now * 1e3,  # bytes/ns -> MB/s
        sketch=subsystem.merged_latency_sketch(),
    )


def subsystem_bandwidth(bundle: TraceBundle,
                        policy: SchedulerPolicy) -> float:
    """Replay ``bundle``'s request streams; returns MB/s."""
    return subsystem_run(bundle, policy).mbps


def run(config: ExperimentConfig = ExperimentConfig()) -> typing.Dict:
    """Returns normalized bandwidth per (workload, policy)."""
    rows = []
    # One sketch per policy, merged across workloads — the tail-latency
    # view behind the bandwidth bars (merge order is irrelevant: the
    # bucket-wise fold is associative and commutative).
    merged = {policy.value: LatencySketch(f"fig13.{policy.value}")
              for policy in POLICIES}
    for name in config.workloads:
        bundle = config.bundle(name)
        runs = {
            policy.value: subsystem_run(bundle, policy)
            for policy in POLICIES
        }
        for policy in POLICIES:
            merged[policy.value].merge(runs[policy.value].sketch)
        baseline = runs[SchedulerPolicy.BARE_METAL.value].mbps
        rows.append({
            "workload": name,
            "write_ratio": workload(name).write_ratio,
            **{policy.value: runs[policy.value].mbps / baseline
               for policy in POLICIES},
        })
    final = merged[SchedulerPolicy.FINAL.value]
    return {
        "rows": rows,
        "mean_final_gain": geometric_mean(
            [row["final"] for row in rows], key="final") - 1.0,
        "mean_selective_gain": geometric_mean(
            [row["selective-erasing"] for row in rows],
            key="selective-erasing") - 1.0,
        "max_interleaving_gain": max(
            row["interleaving"] for row in rows) - 1.0,
        "latency_p50": final.percentile(0.50),
        "latency_p99": final.percentile(0.99),
        "latency_p999": final.percentile(0.999),
    }


def report(result: typing.Dict) -> str:
    """Text rendering of the figure's data."""
    headers = ["workload", "write ratio"] + [p.value for p in POLICIES]
    table = format_table(headers, [
        [row["workload"], row["write_ratio"]]
        + [row[p.value] for p in POLICIES]
        for row in result["rows"]
    ])
    summary = (
        f"max interleaving gain: {result['max_interleaving_gain']:.1%} "
        "(paper: up to 54%, trmm)\n"
        f"mean selective-erasing gain: "
        f"{result['mean_selective_gain']:.1%} (paper: ~57% on "
        "write-bound workloads)\n"
        f"mean final gain: {result['mean_final_gain']:.1%} "
        "(paper: 77% on average)\n"
        f"final-policy request latency: "
        f"p50 {result['latency_p50']:.1f} ns, "
        f"p99 {result['latency_p99']:.1f} ns, "
        f"p999 {result['latency_p999']:.1f} ns"
    )
    return f"Figure 13: subsystem schedulers\n{table}\n{summary}"
