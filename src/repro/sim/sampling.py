"""Ambient sampling hook for the simulation engine.

This module is the engine-side half of windowed time-series telemetry
(the registry-facing half lives in :mod:`repro.telemetry.timeseries`).
It deliberately imports **nothing from repro** — like
:mod:`repro.sim.sanitizer`, it must be importable from the engine
without creating a cycle with the telemetry layer.

The contract mirrors the tracer/metrics ambients:

* a *provider* (any object with ``create_sampler()``) is installed with
  :func:`use_sampling`; :func:`current_sampling` reads it back.
* each :class:`~repro.sim.engine.Simulator` asks the provider for a
  fresh :class:`SamplerHook` at construction.  A provider may return
  ``None`` (e.g. when metrics are disabled), in which case the engine
  keeps its untouched zero-overhead fast drain.
* the engine calls :meth:`SamplerHook.advance` with each event
  timestamp *before* dispatching the events at that instant, and once
  more with the final ``until`` time, so the hook can close every
  simulated-time window boundary it crossed.
"""
from __future__ import annotations

import contextlib
import contextvars
import typing


class SamplerHook:
    """Duck-type base for engine-driven samplers.

    Subclasses override :meth:`advance`; the base implementation is a
    no-op so a bare hook is harmless.
    """

    def advance(self, now: float) -> None:
        """Simulated time has reached ``now``; close crossed windows.

        Called before the events at ``now`` run, so samples written at
        exactly a window boundary land in the *next* window.
        """


class SamplingProvider(typing.Protocol):
    """Anything that can mint per-simulator sampler hooks."""

    def create_sampler(self) -> typing.Optional[SamplerHook]:
        """Return a fresh hook for one simulator, or ``None`` to opt out."""
        ...


_ambient_sampling: "contextvars.ContextVar[typing.Optional[SamplingProvider]]" = (
    contextvars.ContextVar("repro_sampling", default=None))


def current_sampling() -> typing.Optional[SamplingProvider]:
    """The ambient sampling provider, or ``None`` when sampling is off."""
    return _ambient_sampling.get()


@contextlib.contextmanager
def use_sampling(
    provider: typing.Optional[SamplingProvider],
) -> typing.Iterator[typing.Optional[SamplingProvider]]:
    """Install ``provider`` as the ambient sampling provider.

    Simulators constructed inside the ``with`` block ask it for a
    sampler hook; ``None`` restores the disabled default.
    """
    token = _ambient_sampling.set(provider)
    try:
        yield provider
    finally:
        _ambient_sampling.reset(token)
