"""Kernel-side hooks for the race sanitizer and the tie-break oracle.

This module is the *engine half* of :mod:`repro.analysis.racecheck`:
it defines the hook interface the kernel calls into and the ambient
installation slots, with no dependency on the analysis package (the
analysis package imports :mod:`repro.sim`, so the dependency must point
this way to avoid a cycle).

Two debug facilities share this module:

* :class:`KernelSanitizer` — the observation interface.  The kernel,
  events, processes and resources call these hooks *only when a
  sanitizer is installed*; every call site is guarded by an
  ``is not None`` test on the simulator's resolved sanitizer, so an
  uninstrumented run pays at most one attribute load per guarded site
  (and nothing at all on the scheduling fast path, which is swapped in
  wholesale at construction time).
* The **tie-break shuffle seed** — an ambient knob that makes
  :meth:`repro.sim.engine.Simulator.run` drain same-timestamp events in
  a seeded random permutation instead of FIFO order.  The shuffle
  oracle (:func:`repro.analysis.racecheck.certify_tiebreak_independence`)
  uses it to test whether a workload's final stats depend on the
  kernel's tie-break policy.

Both slots are :class:`contextvars.ContextVar`\\ s, mirroring the
ambient tracer: simulators resolve them at construction, so harnesses
wrap workloads without threading arguments through every constructor,
and nested/concurrent uses never clobber each other.
"""

from __future__ import annotations

import contextlib
import contextvars
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.event import Event
    from repro.sim.process import Process
    from repro.sim.resource import Request, Resource


class KernelSanitizer:
    """Observation interface for kernel causality and task boundaries.

    All hooks are no-ops; :class:`repro.analysis.racecheck.RaceSanitizer`
    overrides them to build the happens-before graph.  Hook timing
    contract (what the kernel guarantees):

    * :meth:`begin_task` — an event was popped off the heap; everything
      until the next ``begin_task`` (its callbacks, including process
      segments they resume) executes inside this task.
    * :meth:`on_schedule` — an event was pushed onto the heap from the
      currently running task (or from outside ``run()``, the root task).
    * :meth:`on_trigger` — :meth:`Event.succeed` / :meth:`Event.fail`
      is about to schedule the event; fires *before* ``on_schedule``
      for the same event so the edge can be labeled.
    * :meth:`on_acquire` / :meth:`on_grant` / :meth:`on_release` —
      :class:`~repro.sim.resource.Resource` slot lifecycle; ``on_grant``
      fires for queue hand-offs (inside the releasing task) just before
      the grant event is triggered.
    * :meth:`on_actor` — a :class:`~repro.sim.process.Process` is being
      stepped inside the current task (actor attribution for reports).
    """

    def begin_task(self, event: "Event", ts_ns: float, label: str) -> None:
        """A new atomic task started: ``event`` popped at ``ts_ns``."""

    def on_schedule(self, event: "Event") -> None:
        """``event`` was scheduled by the currently running task."""

    def on_trigger(self, event: "Event", ok: bool) -> None:
        """``event`` is being triggered (succeed/fail) right now."""

    def on_actor(self, process: "Process") -> None:
        """``process`` is executing inside the current task."""

    def on_acquire(self, resource: "Resource", request: "Request") -> None:
        """``request`` was granted a free ``resource`` slot immediately."""

    def on_grant(self, resource: "Resource", request: "Request") -> None:
        """A queued ``request`` is being handed a released slot."""

    def on_release(self, resource: "Resource", request: "Request") -> None:
        """``request`` returned its ``resource`` slot."""


# ----------------------------------------------------------------------
# Ambient installation slots
# ----------------------------------------------------------------------
_SANITIZER: contextvars.ContextVar[typing.Optional[KernelSanitizer]] = (
    contextvars.ContextVar("repro_sim_sanitizer", default=None))

_TIEBREAK_SEED: contextvars.ContextVar[typing.Optional[int]] = (
    contextvars.ContextVar("repro_sim_tiebreak_seed", default=None))

_SanitizerT = typing.TypeVar("_SanitizerT", bound=KernelSanitizer)


def current_sanitizer() -> typing.Optional[KernelSanitizer]:
    """The context's ambient sanitizer (``None`` = uninstrumented)."""
    return _SANITIZER.get()


@contextlib.contextmanager
def use_sanitizer(
        sanitizer: _SanitizerT) -> typing.Iterator[_SanitizerT]:
    """Install ``sanitizer`` ambiently for the ``with`` body.

    Simulators constructed inside the body bind to it at construction
    (the same convention as :func:`repro.telemetry.tracer.use_tracer`).
    Token-based restoration keeps nested uses independent.
    """
    token = _SANITIZER.set(sanitizer)
    try:
        yield sanitizer
    finally:
        _SANITIZER.reset(token)


def current_tiebreak_seed() -> typing.Optional[int]:
    """Ambient tie-break shuffle seed (``None`` = FIFO drain)."""
    return _TIEBREAK_SEED.get()


@contextlib.contextmanager
def use_tiebreak(seed: int) -> typing.Iterator[int]:
    """Shuffle same-timestamp drains of simulators built in the body.

    Every :class:`~repro.sim.engine.Simulator` constructed inside the
    ``with`` block drains equal-timestamp event batches in a seeded
    random permutation instead of FIFO schedule order.  Used by the
    shuffle oracle to certify (or refute) tie-break independence;
    production runs never set this.
    """
    token = _TIEBREAK_SEED.set(seed)
    try:
        yield seed
    finally:
        _TIEBREAK_SEED.reset(token)
