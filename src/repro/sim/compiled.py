"""Compiled flat-loop execution backend for frozen configurations.

The interpreted engine (:mod:`repro.sim.engine`) pays a Python dispatch
per event — fine for exploration, too slow for the million-request
service-layer runs the roadmap targets.  This module is the second
backend: for a **frozen** (topology, scheduler, fault-plan)
configuration it compiles a request stream into a flat loop over
precomputed per-phase timing tables derived from the LPDDR2-NVM
three-phase model, with numpy-vectorized batch phase arithmetic for
homogeneous waves (and a pure-stdlib tier producing bit-identical
floats when numpy is absent).  No event heap, no coroutines, no
per-event dispatch on the steady-state path.

The contract is *byte identity*: a compiled run must leave every
observable — device state, stats objects, latency-sketch payloads,
metrics series, BENCH aggregates — exactly as the interpreted engine
would have.  That is only possible because the schedule of an eligible
configuration is provably deterministic and tie-break independent
(PR 6's ``certify_tiebreak_independence`` oracle is the semantic
precondition); anything outside the certified envelope — sanitizer,
host profiler, tracer, sampler, non-certified schedulers, fault plans,
heterogeneous streams — falls back to the interpreted engine with a
recorded :class:`BackendDecision` naming every reason.

Float discipline: the kernel replicates the interpreted engine's
*exact* arithmetic expressions, not mathematically equivalent ones.
Timeout wake-ups are ``a + (b - a)`` (which is not ``b`` in IEEE-754),
burst holds are ``((t + preamble) + burst) - t``, and the command-chain
prefix sums are seeded sequential accumulations — elementwise identical
between the numpy and stdlib tiers.
"""

from __future__ import annotations

import contextlib
import contextvars
import dataclasses
import importlib
import os
import typing

if typing.TYPE_CHECKING:
    from repro.controller.channel import ChannelController
    from repro.controller.controller import PramSubsystem
    from repro.controller.request import MemoryRequest
    from repro.controller.translator import ChunkPlan
    from repro.pram.module import PramModule
    from repro.pram.timing import TimingModel

#: The selectable execution backends.
BACKENDS: typing.Tuple[str, ...] = ("interpreted", "compiled")

#: Schedulers whose service order is certified tie-break independent
#: (the shuffle oracle's envelope).  SELECTIVE_ERASE issues opportunistic
#: background pre-resets whose interleaving is load-dependent, so it
#: stays on the interpreted engine.
CERTIFIED_POLICIES: typing.FrozenSet[str] = frozenset(
    {"bare-metal", "interleaving", "final"})

_backend_var: contextvars.ContextVar[str] = contextvars.ContextVar(
    "repro_backend", default="interpreted")


def current_backend() -> str:
    """The ambient execution backend ("interpreted" unless overridden)."""
    return _backend_var.get()


@contextlib.contextmanager
def use_backend(backend: str) -> typing.Iterator[None]:
    """Select the execution backend for the enclosed scope.

    Follows the ambient-contextvar pattern of ``use_tracer`` /
    ``use_sampling``: experiment cells wrap themselves in
    ``use_backend(config.backend)`` and every ``run_stream`` call
    underneath resolves the knob without plumbing.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}")
    token = _backend_var.set(backend)
    try:
        yield
    finally:
        _backend_var.reset(token)


@dataclasses.dataclass(frozen=True)
class BackendDecision:
    """One backend-selection outcome, with the fallback reasons."""

    requested: str
    used: str
    reasons: typing.Tuple[str, ...] = ()

    @property
    def compiled(self) -> bool:
        """Did the compiled kernel actually run?"""
        return self.used == "compiled"


_decision_log: typing.List[BackendDecision] = []


def record_decision(decision: BackendDecision) -> None:
    """Append one decision to the process-wide log."""
    _decision_log.append(decision)


def backend_decisions() -> typing.Tuple[BackendDecision, ...]:
    """Every decision recorded since the last clear, oldest first."""
    return tuple(_decision_log)


def clear_backend_decisions() -> None:
    """Reset the decision log (test / CLI isolation)."""
    del _decision_log[:]


def load_numpy() -> typing.Any:
    """The numpy module, or None when absent or disabled.

    ``REPRO_NO_NUMPY`` (any non-empty value) forces the pure-stdlib
    tier — the CI lever that exercises the fallback arithmetic on
    machines that do have numpy installed.  Checked per call so tests
    can monkeypatch the environment.
    """
    if os.environ.get("REPRO_NO_NUMPY"):
        return None
    try:
        return importlib.import_module("numpy")
    except ImportError:
        return None


# ----------------------------------------------------------------------
# Eligibility: the frozen-configuration envelope
# ----------------------------------------------------------------------
def subsystem_fallback_reasons(
        subsystem: "PramSubsystem") -> typing.List[str]:
    """Configuration-level reasons this subsystem cannot be compiled.

    Empty means the *topology* is frozen; the stream itself is vetted
    separately by :func:`stream_fallback_reasons`.
    """
    reasons: typing.List[str] = []
    sim = subsystem.sim
    if subsystem.policy.value not in CERTIFIED_POLICIES:
        reasons.append(
            f"scheduler '{subsystem.policy.value}' is not certified "
            "tie-break independent")
    if subsystem.firmware is not None:
        reasons.append("firmware model attached")
    if subsystem.faults is not None:
        reasons.append("fault plan attached")
    if subsystem.monitor is not None:
        reasons.append("protocol monitor attached")
    channel = subsystem.channels[0]
    if channel.wear_leveling:
        reasons.append("wear leveling enabled")
    if channel.write_pausing:
        reasons.append("write pausing enabled")
    if sim.tracer.enabled:
        reasons.append("tracer attached")
    if sim._sanitizer is not None:
        reasons.append("kernel sanitizer attached")
    if sim._tiebreak_rng is not None:
        reasons.append("tie-break shuffle seed set")
    if sim.sampler is not None:
        reasons.append("sampler attached")
    if sim.hostprof is not None:
        reasons.append("host profiler attached")
    return reasons


def stream_fallback_reasons(
        subsystem: "PramSubsystem",
        requests: typing.Sequence["MemoryRequest"],
        mode: str) -> typing.List[str]:
    """Stream-shape reasons this batch cannot be compiled.

    The concurrency census exploits the address layout instead of
    walking chunks: consecutive chunks of a request occupy consecutive
    row strides, so their ``(channel, module)`` pair rotates through
    all ``modules x channels`` positions with that exact period.  Per
    request the per-pair maxima and channel span are therefore closed
    forms of the chunk count — O(1) per request, never touching the
    planner's round-robin buffer rotation before a fallback hands the
    same stream to the interpreted engine.
    """
    reasons: typing.List[str] = []
    first = requests[0]
    if any(request.op is not first.op for request in requests):
        reasons.append("mixed-operation stream")
    if any(request.size != first.size for request in requests):
        reasons.append("mixed request sizes")
    if any(request.done is not None for request in requests):
        reasons.append("request carries a completion event")
    is_write = first.op.value == "write"
    if is_write and mode == "open":
        reasons.append("open-loop write stream")
    geometry = subsystem.geometry
    pair_count = geometry.rdb_count
    row_bytes = geometry.row_bytes
    modules = geometry.modules_per_channel
    channels = geometry.channels
    period = modules * channels
    # Per-wave concurrency census.  A wave is the set of chunks that
    # arrive at one instant on one channel: the whole stream under an
    # open interleaving run, one request otherwise.
    pooled = (mode == "open" and subsystem.policy.interleaves
              and not is_write)
    pooled_counts = [0] * period if pooled else []
    multi_channel = False
    module_reuse = False
    excess = False
    for request in requests:
        if request.size <= 0:
            continue
        first_rest = request.address // row_bytes
        last_rest = (request.address + request.size - 1) // row_bytes
        chunks = last_rest - first_rest + 1
        # channel = (rest // modules) % channels: any two consecutive
        # module-blocks land on different channels when there is more
        # than one, so a request spans channels iff it spans blocks.
        if channels > 1 and last_rest // modules != first_rest // modules:
            multi_channel = True
        if is_write:
            if chunks > period:
                module_reuse = True
        elif pooled:
            # rest % period pins both module (rest % modules) and
            # channel ((rest % period) // modules), so accumulating by
            # rotation position is exact.
            base, extra = divmod(chunks, period)
            if base:
                pooled_counts = [count + base for count in pooled_counts]
            for step in range(extra):
                pooled_counts[(first_rest + step) % period] += 1
        elif chunks > pair_count * period:
            excess = True
    if pooled and any(count > pair_count for count in pooled_counts):
        excess = True
    if module_reuse:
        reasons.append("write request re-uses a module")
    if excess:
        reasons.append(
            f"per-module read concurrency exceeds the {pair_count} "
            "buffer pairs")
    if multi_channel and subsystem._metrics_on:
        # The shared sched.interleave.overlap_ns counter and dynamic
        # per-partition hit counters accumulate in cross-channel
        # chronological order under the interpreted engine; the kernel
        # drains channel-major, so float-sum order would diverge.
        reasons.append("multi-channel request under an active "
                       "metrics registry")
    return reasons


# ----------------------------------------------------------------------
# Timing tables
# ----------------------------------------------------------------------
class TimingTable:
    """Per-phase constants precomputed from the three-phase model.

    One evaluation of :class:`~repro.pram.timing.TimingModel` per
    phase at kernel construction; the flat loop then runs on plain
    float loads.  Burst durations are memoized per size (the chunk
    ceiling makes them step functions of size).
    """

    __slots__ = ("pre_active", "activate", "read_preamble",
                 "write_preamble", "write_recovery", "_model",
                 "_burst_cache")

    def __init__(self, timing: "TimingModel") -> None:
        self.pre_active = timing.pre_active()
        self.activate = timing.activate()
        self.read_preamble = timing.read_preamble()
        self.write_preamble = timing.write_preamble()
        self.write_recovery = timing.write_recovery()
        self._model = timing
        self._burst_cache: typing.Dict[int, float] = {}

    def burst_ns(self, size: int) -> float:
        """Bus occupancy of a ``size``-byte data burst."""
        value = self._burst_cache.get(size)
        if value is None:
            value = self._model.burst(size)
            self._burst_cache[size] = value
        return value


class _ChunkState:
    """Working record of one chunk as it moves through a wave."""

    __slots__ = ("chunk", "module_index", "module", "partition", "row",
                 "upper", "lower", "buffer_id", "need_pre", "need_act",
                 "end", "piece")

    chunk: "ChunkPlan"
    module_index: int
    module: "PramModule"
    partition: int
    row: int
    upper: int
    lower: int
    buffer_id: int
    need_pre: bool
    need_act: bool
    end: float
    piece: typing.Tuple[int, bytes]


#: One channel's planned chunk states: ``(channel index, states)``.
_ChannelGroup = typing.Tuple[int, typing.List[_ChunkState]]


class CompiledKernel:
    """Flat-loop executor over an eligible subsystem.

    The kernel mirrors the interpreted schedule analytically: per
    channel it keeps one bus-clock (the FIFO bus grant chain is
    ``grant = max(previous hold end, request time)``), issues command
    packets and array phases from the timing table, and applies device
    state through the module's ``latch_*`` state halves in the same
    order the event loop would have.  At the end it
    :meth:`~repro.sim.engine.Simulator.fast_forward`\\ s the simulator
    clock so interpreted and compiled phases compose within one run.
    """

    def __init__(self, subsystem: "PramSubsystem") -> None:
        self.subsystem = subsystem
        self.sim = subsystem.sim
        self.table = TimingTable(subsystem.channels[0].modules[0].timing)
        self._bus_free = [0.0] * len(subsystem.channels)
        self._np = load_numpy()

    # ------------------------------------------------------------------
    # Stream drivers
    # ------------------------------------------------------------------
    def run(self, requests: typing.Sequence["MemoryRequest"],
            mode: str) -> None:
        """Service the whole stream; leaves ``sim.now`` at completion."""
        if mode == "closed":
            self._run_closed(requests)
        else:
            self._run_open(requests)

    def _run_closed(self, requests: typing.Sequence["MemoryRequest"]
                    ) -> None:
        """One request in flight at a time (the next submits at the
        previous completion instant) — the perf-benchmark shape."""
        sim = self.sim
        for request in requests:
            arrival = sim.now
            self._submit(request, arrival)
            grouped = self._plan(request)
            for channel_index, states in grouped:
                self._drain_wave(channel_index, arrival, states)
            end = max(state.end for _, states in grouped
                      for state in states)
            sim.fast_forward(end)
            self._complete(request, end,
                           [state.piece for _, states in grouped
                            for state in states])

    def _run_open(self, requests: typing.Sequence["MemoryRequest"]
                  ) -> None:
        """All requests submitted at one instant, in flight together."""
        sim = self.sim
        start = sim.now
        groups: typing.List[typing.List[_ChannelGroup]] = []
        for request in requests:
            self._submit(request, start)
            groups.append(self._plan(request))
        if self.subsystem.policy.interleaves:
            # Chunks pool per channel; the wave order is the chunk
            # process creation order of the interpreted engine:
            # request-major, then channel, then chunk.
            pooled: typing.Dict[int, typing.List[_ChunkState]] = {}
            for grouped in groups:
                for channel_index, states in grouped:
                    pooled.setdefault(channel_index, []).extend(states)
            for channel_index in sorted(pooled):
                self._drain_wave(channel_index, start,
                                 pooled[channel_index])
        else:
            # Bare-metal ordering: the serial lock hands each channel
            # to one request at a time, FIFO in submission order; the
            # next group starts at the previous group's last chunk end.
            chains: typing.Dict[
                int, typing.List[typing.List[_ChunkState]]] = {}
            for grouped in groups:
                for channel_index, states in grouped:
                    chains.setdefault(channel_index, []).append(states)
            for channel_index in sorted(chains):
                arrival = start
                for states in chains[channel_index]:
                    self._drain_wave(channel_index, arrival, states)
                    arrival = max(state.end for state in states)
        ends = [max(state.end for _, states in grouped
                    for state in states) for grouped in groups]
        # Completion bookkeeping runs in chronological order; ties fall
        # back to submission order, which the tie-break-independence
        # precondition makes observationally equivalent.
        for index in sorted(range(len(requests)),
                            key=lambda i: (ends[i], i)):
            self._complete(requests[index], ends[index],
                           [state.piece for _, states in groups[index]
                            for state in states])
        sim.fast_forward(max(ends))

    # ------------------------------------------------------------------
    # Request bookkeeping (mirrors PramSubsystem.submit exactly)
    # ------------------------------------------------------------------
    def _submit(self, request: "MemoryRequest", now: float) -> None:
        subsystem = self.subsystem
        request.submit_time = now
        if subsystem._metrics_on:
            subsystem._inflight += 1
            subsystem.queue_depth.record(now, float(subsystem._inflight))

    def _complete(self, request: "MemoryRequest", end: float,
                  pieces: typing.List[typing.Tuple[int, bytes]]) -> None:
        subsystem = self.subsystem
        request.complete_time = end
        sketch = subsystem.latency_sketches.get(request.op.value)
        if sketch is not None:
            sketch.add(request.latency)
        if subsystem._metrics_on:
            subsystem._inflight -= 1
            subsystem.queue_depth.record(end,
                                         float(subsystem._inflight))
            subsystem.request_latency.add(request.latency)
        pieces.sort(key=lambda piece: piece[0])
        request.result = b"".join(data for _, data in pieces)
        subsystem.requests_completed += 1

    def _plan(self, request: "MemoryRequest"
              ) -> typing.List[_ChannelGroup]:
        """Planner chunks resolved into per-channel working states.

        Eligibility guarantees wear leveling and row retirement are
        off, so the logical row *is* the physical row.
        """
        subsystem = self.subsystem
        channels = subsystem.channels
        by_channel: typing.Dict[int, typing.List[_ChunkState]] = {}
        for chunk in subsystem.planner.plan(request):
            address = chunk.address
            channel_index = address.channel
            state = _ChunkState()
            state.chunk = chunk
            state.module_index = address.module
            state.module = channels[channel_index].modules[address.module]
            state.partition = address.partition
            state.row = address.row
            states = by_channel.get(channel_index)
            if states is None:
                states = by_channel[channel_index] = []
            states.append(state)
        return [(channel_index, by_channel[channel_index])
                for channel_index in sorted(by_channel)]

    # ------------------------------------------------------------------
    # Wave drains
    # ------------------------------------------------------------------
    def _drain_wave(self, channel_index: int, arrival: float,
                    states: typing.List[_ChunkState]) -> None:
        """Service one channel's chunks that all arrive at ``arrival``."""
        if states[0].chunk.is_write:
            self._drain_write_wave(channel_index, arrival, states)
        else:
            self._drain_read_wave(channel_index, arrival, states)

    def _drain_read_wave(self, channel_index: int, arrival: float,
                         states: typing.List[_ChunkState]) -> None:
        channel = self.subsystem.channels[channel_index]
        series = channel._pairs_series
        split_row = channel.address_map.split_row
        probe = channel._probe_buffers
        busy_pairs = channel._busy_pairs
        # Probe + pair reservation happen for every chunk at the wave
        # instant, in chunk order, before any command completes —
        # exactly the interpreted process creation order at ``arrival``.
        # The batch-arithmetic precondition is checked in the same
        # pass: one shared phase decision and pairwise-distinct
        # (module, partition) targets, so per-chunk device horizons
        # cannot feed back within the wave.
        first = states[0]
        targets = set()
        uniform = True
        for state in states:
            upper, lower = split_row(state.row)
            state.upper = upper
            state.lower = lower
            if series is not None:
                channel._pairs_in_use += 1
                series.record(arrival, float(channel._pairs_in_use))
            busy = busy_pairs[state.module_index]
            state.buffer_id, state.need_pre, state.need_act = probe(
                state.module, state.partition, state.row, upper,
                state.chunk.buffer_id, busy)
            busy.add(state.buffer_id)
            if (state.need_pre != first.need_pre
                    or state.need_act != first.need_act):
                uniform = False
            targets.add((state.module_index, state.partition))
        if (uniform and first.need_act and len(states) > 1
                and len(targets) == len(states)):
            self._uniform_read_phases(channel, channel_index, arrival,
                                      states)
        else:
            self._general_read_phases(channel, channel_index, arrival,
                                      states)

    def _uniform_read_phases(self, channel: "ChannelController",
                             channel_index: int, arrival: float,
                             states: typing.List[_ChunkState]) -> None:
        """Vectorized phase arithmetic for a homogeneous miss wave."""
        need_pre = states[0].need_pre
        packets = 2 if need_pre else 1
        # Every chunk ships the same packet count, so one PHY call
        # prices the wave; the packet counter is a plain integer sum,
        # so bulk-adding the rest leaves it byte-identical.
        phy = channel.phy
        cost = phy.command_cost(packets)
        if len(states) > 1:
            phy.packets_sent += packets * (len(states) - 1)
        costs = [cost] * len(states)
        start = self._bus_free[channel_index]
        if arrival > start:
            start = arrival
        cmd_ends, act_ends, wakes, durations = self._batch_phases(
            start, costs, need_pre,
            [state.module._partition_busy_until[state.partition]
             for state in states],
            [state.chunk.size for state in states])
        self._bus_free[channel_index] = cmd_ends[-1]
        bus_counter = channel._bus_counter
        note_window = self._note_window
        # Sequential local accumulation is the same float-add chain as
        # per-chunk ``+=`` on the attribute.
        bus_busy = channel.bus_busy_ns
        for state, cmd_end, act_end in zip(states, cmd_ends, act_ends):
            module = state.module
            bus_busy = bus_busy + cost
            if bus_counter is not None:
                bus_counter.add(cost)
            if need_pre:
                module.latch_rab(state.buffer_id, state.upper)
            module.latch_rdb(state.buffer_id, state.partition,
                             state.lower, act_end)
            note_window(channel, state.module_index, state.partition,
                        cmd_end, act_end, cmd_end)
        channel.bus_busy_ns = bus_busy
        # Bursts join the bus FIFO as their array phases finish; equal
        # wake-ups resolve in chunk order (the interpreted heap's
        # insertion-order tie-break over timeouts scheduled in chunk
        # order).  This is :meth:`_finish_burst` unrolled with the
        # per-wave invariants hoisted — same operations, same order.
        bus_free = self._bus_free[channel_index]
        bus_busy = channel.bus_busy_ns
        chunks_read = 0
        telemetry_on = channel._telemetry_on
        pairs_series = channel._pairs_series
        stage_load = channel.datapath.stage_load
        busy_pairs = channel._busy_pairs
        read_latency_add = channel.read_latency.add
        read_sketch_add = channel.read_sketch.add
        # Stable sort on wake alone ≡ (wake, chunk index): range() is
        # already in chunk order.
        for index in sorted(range(len(states)), key=wakes.__getitem__):
            state = states[index]
            wake = wakes[index]
            duration = durations[index]
            grant = bus_free if bus_free > wake else wake
            end = grant + duration
            bus_free = end
            chunk = state.chunk
            data = state.module.stream_rdb(state.buffer_id,
                                           chunk.address.column,
                                           chunk.size)
            bus_busy = bus_busy + duration
            if bus_counter is not None:
                bus_counter.add(duration)
            if telemetry_on:
                overlap = channel._array_overlap(
                    (state.module_index, state.partition), grant, end)
                if overlap > 0.0:
                    channel.overlap_ns += overlap
                    if channel._overlap_counter is not None:
                        channel._overlap_counter.add(overlap)
            stage_load(data)
            busy_pairs[state.module_index].discard(state.buffer_id)
            if pairs_series is not None:
                channel._pairs_in_use -= 1
                pairs_series.record(end, float(channel._pairs_in_use))
            latency = end - arrival
            read_latency_add(latency)
            read_sketch_add(latency)
            chunks_read += 1
            state.end = end
            state.piece = (chunk.offset, data)
        self._bus_free[channel_index] = bus_free
        channel.bus_busy_ns = bus_busy
        channel.chunks_read += chunks_read

    def _batch_phases(self, start: float, costs: typing.List[float],
                      need_pre: bool, ready: typing.List[float],
                      sizes: typing.List[int]) -> typing.Tuple[
                          typing.List[float], typing.List[float],
                          typing.List[float], typing.List[float]]:
        """Elementwise phase times for one uniform wave.

        Returns ``(cmd_ends, act_ends, burst_wakes, burst_durations)``
        as plain Python floats.  The numpy tier and the stdlib tier
        evaluate the *same* IEEE-754 expressions — a seeded sequential
        prefix sum for the command chain, ``max`` against the partition
        horizon, and the engine's ``a + (b - a)`` timeout wake — so
        their outputs are bit-identical.
        """
        table = self.table
        np = self._np
        if np is not None:
            seeded = np.empty(len(costs) + 1, dtype=np.float64)
            seeded[0] = start
            seeded[1:] = costs
            cmd = np.cumsum(seeded)[1:]
            device = cmd + table.pre_active if need_pre else cmd
            begin = np.maximum(device, np.asarray(ready,
                                                  dtype=np.float64))
            act = begin + table.activate
            wake = cmd + (act - cmd)
            finish = (wake + table.read_preamble) + np.asarray(
                [table.burst_ns(size) for size in sizes],
                dtype=np.float64)
            duration = finish - wake
            return (cmd.tolist(), act.tolist(), wake.tolist(),
                    duration.tolist())
        cmd_ends: typing.List[float] = []
        accumulator = start
        for cost in costs:
            accumulator = accumulator + cost
            cmd_ends.append(accumulator)
        act_ends: typing.List[float] = []
        wakes: typing.List[float] = []
        durations: typing.List[float] = []
        for index, cmd_end in enumerate(cmd_ends):
            device = cmd_end + table.pre_active if need_pre else cmd_end
            horizon = ready[index]
            begin = device if device >= horizon else horizon
            act_end = begin + table.activate
            wake = cmd_end + (act_end - cmd_end)
            finish = ((wake + table.read_preamble)
                      + table.burst_ns(sizes[index]))
            act_ends.append(act_end)
            wakes.append(wake)
            durations.append(finish - wake)
        return cmd_ends, act_ends, wakes, durations

    def _general_read_phases(self, channel: "ChannelController",
                             channel_index: int, arrival: float,
                             states: typing.List[_ChunkState]) -> None:
        """Scalar pass for mixed waves (hits, repeats, lone chunks).

        Pass 1 walks chunks in order: RDB hits burst immediately (they
        join the bus FIFO at the wave instant), misses issue their
        command packets and array phases and defer their burst to the
        array-finish wake-up.  Every pass-1 bus hold completes before
        any deferred burst is granted (deferred requests join the FIFO
        strictly later), so pass 2 replays them in (wake, chunk) order.
        """
        table = self.table
        bus_counter = channel._bus_counter
        deferred: typing.List[
            typing.Tuple[float, int, _ChunkState, float]] = []
        for sequence, state in enumerate(states):
            if not state.need_pre and not state.need_act:
                finish = ((arrival + table.read_preamble)
                          + table.burst_ns(state.chunk.size))
                self._finish_burst(channel, channel_index, state,
                                   arrival, finish - arrival, arrival)
                continue
            packets = ((1 if state.need_pre else 0)
                       + (1 if state.need_act else 0))
            cost = channel.phy.command_cost(packets)
            grant = self._bus_free[channel_index]
            if arrival > grant:
                grant = arrival
            cmd_end = grant + cost
            self._bus_free[channel_index] = cmd_end
            channel.bus_busy_ns += cost
            if bus_counter is not None:
                bus_counter.add(cost)
            now = cmd_end
            if state.need_pre:
                state.module.latch_rab(state.buffer_id, state.upper)
                now = now + table.pre_active
            if state.need_act:
                horizon = state.module._partition_busy_until[
                    state.partition]
                begin = now if now >= horizon else horizon
                act_end = begin + table.activate
                state.module.latch_rdb(state.buffer_id, state.partition,
                                       state.lower, act_end)
                now = act_end
            self._note_window(channel, state.module_index,
                              state.partition, cmd_end, now, cmd_end)
            wake = cmd_end + (now - cmd_end) if now > cmd_end else cmd_end
            finish = ((wake + table.read_preamble)
                      + table.burst_ns(state.chunk.size))
            deferred.append((wake, sequence, state, finish - wake))
        deferred.sort(key=lambda item: (item[0], item[1]))
        for wake, _, state, duration in deferred:
            self._finish_burst(channel, channel_index, state, wake,
                               duration, arrival)

    def _finish_burst(self, channel: "ChannelController",
                      channel_index: int, state: _ChunkState,
                      request_time: float, duration: float,
                      chunk_start: float) -> None:
        """Grant the data burst and run all completion bookkeeping."""
        chunk = state.chunk
        grant = self._bus_free[channel_index]
        if request_time > grant:
            grant = request_time
        end = grant + duration
        self._bus_free[channel_index] = end
        data = state.module.stream_rdb(state.buffer_id,
                                       chunk.address.column, chunk.size)
        channel.bus_busy_ns += duration
        if channel._bus_counter is not None:
            channel._bus_counter.add(duration)
        if channel._telemetry_on:
            overlap = channel._array_overlap(
                (state.module_index, state.partition), grant, end)
            if overlap > 0.0:
                channel.overlap_ns += overlap
                if channel._overlap_counter is not None:
                    channel._overlap_counter.add(overlap)
        channel.datapath.stage_load(data)
        channel._busy_pairs[state.module_index].discard(state.buffer_id)
        if channel._pairs_series is not None:
            channel._pairs_in_use -= 1
            channel._pairs_series.record(end,
                                         float(channel._pairs_in_use))
        latency = end - chunk_start
        channel.read_latency.add(latency)
        channel.read_sketch.add(latency)
        channel.chunks_read += 1
        state.end = end
        state.piece = (chunk.offset, data)

    def _drain_write_wave(self, channel_index: int, arrival: float,
                          states: typing.List[_ChunkState]) -> None:
        """Closed-mode write wave: one chunk per module (eligibility),
        staging bursts chained over the bus, array programs through the
        module's own timed entry points."""
        channel = self.subsystem.channels[channel_index]
        table = self.table
        bus_counter = channel._bus_counter
        completions: typing.List[typing.Tuple[float, int, float]] = []
        for sequence, state in enumerate(states):
            chunk = state.chunk
            module = state.module
            payload = chunk.payload
            assert payload is not None
            channel.datapath.stage_store(payload)
            stage_finish = module.stage_program(
                arrival, state.partition, state.row,
                chunk.address.column, payload)
            duration = stage_finish - arrival
            grant = self._bus_free[channel_index]
            if arrival > grant:
                grant = arrival
            end = grant + duration
            self._bus_free[channel_index] = end
            channel.bus_busy_ns += duration
            if bus_counter is not None:
                bus_counter.add(duration)
            module.execute_program(end, req=chunk.request.request_id)
            ready = module.partition_ready_at(state.partition)
            self._note_window(channel, state.module_index,
                              state.partition, end, ready, end)
            now = end
            while ready > now:
                now = now + (ready - now)
                ready = module.partition_ready_at(state.partition)
            recovery = table.write_recovery
            if recovery > 0:
                now = now + recovery
            completions.append((now, sequence, now - arrival))
            state.end = now
            state.piece = (chunk.offset, b"")
        # The interpreted engine records each chunk's latency at its
        # completion event, so cross-module waves interleave samples in
        # completion order, FIFO on ties — the float accumulators are
        # order-sensitive, so replay that order here.
        completions.sort(key=lambda item: (item[0], item[1]))
        for _, _, latency in completions:
            channel.write_latency.add(latency)
            channel.write_sketch.add(latency)
            channel.chunks_written += 1

    def _note_window(self, channel: "ChannelController",
                     module_index: int, partition: int, start: float,
                     end: float, now: float) -> None:
        """``ChannelController._note_array_window`` with an explicit
        ``now`` — the kernel's clock runs ahead of ``sim.now``, so the
        prune floor must come from the schedule, not the simulator."""
        if not channel._telemetry_on or end <= start:
            return
        windows = channel._array_windows
        if len(windows) > 64:
            floor = now - 10_000.0
            windows = [w for w in windows if w[1] > floor]
            channel._array_windows = windows
        windows.append((start, end, (module_index, partition)))
