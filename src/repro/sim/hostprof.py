"""Kernel-side hooks for host wall-clock profiling.

This module is the *engine half* of :mod:`repro.telemetry.hostprof`:
it defines the hook interface the kernel calls into and the ambient
installation slot, with no dependency on the telemetry package (the
telemetry package imports :mod:`repro.sim`, so the dependency must
point this way to avoid a cycle) — mirroring
:mod:`repro.sim.sampling` and :mod:`repro.sim.sanitizer`.

The contract mirrors the sampling ambient:

* a *provider* (any object with ``create_hostprof()``) is installed
  with :func:`use_hostprof`; :func:`current_hostprof` reads it back.
* each :class:`~repro.sim.engine.Simulator` asks the provider for a
  :class:`HostProfilerHook` at construction.  A provider may return
  ``None``, in which case the engine keeps its untouched zero-overhead
  fast drain.
* with a hook bound, ``run()`` drains through a dedicated profiled
  loop that reads the hook's ``clock`` around every event dispatch.
  Hook timing contract (what the kernel guarantees):

  - :meth:`HostProfilerHook.begin_run` / :meth:`HostProfilerHook.end_run`
    bracket one ``run()`` drain; every dispatch segment lands between
    them, so the segments tile the drain's wall clock with no gaps
    (inter-dispatch time is the kernel's own heap work).
  - :meth:`HostProfilerHook.on_dispatch` fires after each event's
    callbacks ran, with the *pre-dispatch* callback list (so the hook
    can attribute the event to the process that was resumed) and the
    ``[start, end)`` host-clock segment the callbacks occupied.
  - :meth:`HostProfilerHook.on_batch` fires once per same-timestamp
    batch with the batch size (the census the batched fast drain — and
    any future compiled kernel — must reproduce).
  - :meth:`HostProfilerHook.on_schedule` fires per admitted
    ``_schedule`` call (the schedule census); it is swapped in as an
    instance attribute like the sanitized variant, so the
    uninstrumented scheduling fast path keeps its guard-free body.

The seeded tie-break shuffle drain (``tiebreak_seed``) takes priority
over the profiled drain: shuffle mode is a debug oracle, and host
timing under a randomized dispatch order would not be attributable
anyway.  The schedule census still fires there.
"""

from __future__ import annotations

import contextlib
import contextvars
# Host wall-clock attribution is this hook's entire purpose; simulated
# time stays in the event heap.  This is the one sanctioned
# perf-counter import in the kernel.
import time  # noqa: SIM001
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.event import Event

#: A host clock: returns integer nanoseconds, monotonic.
HostClock = typing.Callable[[], int]


class HostProfilerHook:
    """Observation interface for host wall-clock attribution.

    All hooks are no-ops;
    :class:`repro.telemetry.hostprof.HostProfiler` overrides them to
    accumulate (component, process, phase, event-kind) buckets and the
    dispatch census.  ``clock`` is the host time source the engine
    reads — injectable so determinism tests can stub it with a counter.
    """

    clock: HostClock = staticmethod(time.perf_counter_ns)

    def begin_run(self, host_ns: int) -> None:
        """One ``run()`` drain started; ``host_ns`` is the clock now."""

    def end_run(self, host_ns: int) -> None:
        """The drain that :meth:`begin_run` opened finished."""

    def on_dispatch(self, event: "Event",
                    callbacks: typing.Sequence[typing.Callable[..., None]],
                    start_ns: int, end_ns: int) -> None:
        """``event``'s callbacks ran over host ``[start_ns, end_ns)``.

        ``callbacks`` is the pre-dispatch callback list (the event's
        own list has already been detached), so bound-method owners are
        still discoverable for attribution.
        """

    def on_batch(self, size: int) -> None:
        """A same-timestamp batch of ``size`` events finished draining."""

    def on_schedule(self, event: "Event") -> None:
        """``event`` was admitted onto the heap (schedule census)."""


class HostProfilingProvider(typing.Protocol):
    """Anything that can supply per-simulator profiler hooks."""

    def create_hostprof(self) -> typing.Optional[HostProfilerHook]:
        """Return a hook for one simulator, or ``None`` to opt out."""
        ...


_ambient_hostprof: "contextvars.ContextVar[typing.Optional[HostProfilingProvider]]" = (
    contextvars.ContextVar("repro_hostprof", default=None))


def current_hostprof() -> typing.Optional[HostProfilingProvider]:
    """The ambient profiling provider, or ``None`` when profiling is off."""
    return _ambient_hostprof.get()


@contextlib.contextmanager
def use_hostprof(
    provider: typing.Optional[HostProfilingProvider],
) -> typing.Iterator[typing.Optional[HostProfilingProvider]]:
    """Install ``provider`` as the ambient host-profiling provider.

    Simulators constructed inside the ``with`` block ask it for a
    profiler hook; ``None`` restores the disabled default.
    """
    token = _ambient_hostprof.set(provider)
    try:
        yield provider
    finally:
        _ambient_hostprof.reset(token)
