"""Contended-resource primitives: resources, stores, and channels."""

from __future__ import annotations

import collections
import typing

from repro.sim.event import Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator


class Request(Event):
    """Pending claim on a :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.sim, name=f"request({resource.name})")
        self.resource = resource


class Resource:
    """A pool of ``capacity`` identical slots (ports, lanes, cores).

    Usage inside a process::

        request = bus.request()
        yield request
        ...  # exclusive use of one slot
        bus.release(request)
    """

    def __init__(self, sim: "Simulator", capacity: int = 1,
                 name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._users: typing.Set[Request] = set()
        self._queue: typing.Deque[Request] = collections.deque()

    @property
    def count(self) -> int:
        """Number of slots currently claimed."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def request(self) -> Request:
        """Claim a slot; the returned event triggers when granted."""
        req = Request(self)
        if len(self._users) < self.capacity:
            self._users.add(req)
            sanitizer = self.sim._sanitizer
            if sanitizer is not None:
                sanitizer.on_acquire(self, req)
            req.succeed()
        else:
            self._queue.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted slot to the pool.

        Hand-offs to queued waiters happen inside the releasing task,
        so release -> next-grant is a happens-before edge by
        construction; the sanitizer hooks label it explicitly so
        racecheck reports can distinguish Resource causality from
        ordinary scheduling.
        """
        sanitizer = self.sim._sanitizer
        if request in self._users:
            self._users.remove(request)
            if sanitizer is not None:
                sanitizer.on_release(self, request)
        elif request in self._queue:
            self._queue.remove(request)
            return
        else:
            raise ValueError(f"{request!r} does not hold {self.name}")
        while self._queue and len(self._users) < self.capacity:
            waiter = self._queue.popleft()
            self._users.add(waiter)
            if sanitizer is not None:
                sanitizer.on_grant(self, waiter)
            waiter.succeed()

    def use(self, duration: float) -> typing.Generator:
        """Convenience process body: hold one slot for ``duration`` ns."""
        req = self.request()
        yield req
        try:
            yield self.sim.timeout(duration)
        finally:
            self.release(req)


class Store:
    """Unbounded-or-bounded FIFO of items passed between processes."""

    def __init__(self, sim: "Simulator", capacity: float = float("inf"),
                 name: str = "store") -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.items: typing.Deque[object] = collections.deque()
        self._getters: typing.Deque[Event] = collections.deque()
        self._putters: typing.Deque[typing.Tuple[Event, object]] = (
            collections.deque()
        )

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: object) -> Event:
        """Deposit ``item``; triggers when space is available."""
        event = Event(self.sim, name=f"put({self.name})")
        if self._getters:
            self._getters.popleft().succeed(item)
            event.succeed()
        elif len(self.items) < self.capacity:
            self.items.append(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Withdraw the oldest item; triggers with that item."""
        event = Event(self.sim, name=f"get({self.name})")
        if self.items:
            event.succeed(self.items.popleft())
            if self._putters:
                putter, item = self._putters.popleft()
                self.items.append(item)
                putter.succeed()
        else:
            self._getters.append(event)
        return event


class Channel:
    """A link with fixed latency and finite bandwidth (bus, PCIe lane).

    A transfer of ``size`` bytes occupies the channel for
    ``size / bandwidth`` ns and completes ``latency`` ns after its last
    byte leaves — the standard store-and-forward pipe model.  Transfers
    serialize; concurrent senders queue.
    """

    def __init__(self, sim: "Simulator", bandwidth_bytes_per_ns: float,
                 latency_ns: float = 0.0, name: str = "channel") -> None:
        if bandwidth_bytes_per_ns <= 0:
            raise ValueError(
                f"bandwidth must be positive, got {bandwidth_bytes_per_ns}"
            )
        if latency_ns < 0:
            raise ValueError(f"latency must be >= 0, got {latency_ns}")
        self.sim = sim
        self.name = name
        self.bandwidth = bandwidth_bytes_per_ns
        self.latency = latency_ns
        self._lock = Resource(sim, capacity=1, name=f"{name}.lock")
        self.bytes_transferred = 0.0
        self.busy_time = 0.0

    def occupancy_time(self, size_bytes: float) -> float:
        """Time the channel is held by a ``size_bytes`` transfer."""
        return size_bytes / self.bandwidth

    def transfer_time(self, size_bytes: float) -> float:
        """End-to-end time for a transfer, including wire latency."""
        return self.occupancy_time(size_bytes) + self.latency

    def transfer(self, size_bytes: float) -> typing.Generator:
        """Process body: move ``size_bytes`` across the channel."""
        if size_bytes < 0:
            raise ValueError(f"negative transfer size: {size_bytes}")
        req = self._lock.request()
        yield req
        try:
            hold = self.occupancy_time(size_bytes)
            yield self.sim.timeout(hold)
            self.busy_time += hold
            self.bytes_transferred += size_bytes
        finally:
            self._lock.release(req)
        yield self.sim.timeout(self.latency)
