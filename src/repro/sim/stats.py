"""Statistics containers shared by every experiment.

The paper's figures need three shapes of data:

* scalar totals (bandwidth, total energy) — :class:`Counter`;
* per-category decompositions (Figures 16/17) — :class:`Breakdown`;
* time series sampled over a run (Figures 18-21) — :class:`TimeSeries`;
* latency distributions for the scheduler studies — :class:`Histogram`;
* mergeable tail-latency sketches for sharded runs — :class:`LatencySketch`.

Percentile definition (shared by :class:`Histogram` and
:class:`LatencySketch`): **nearest-rank**.  For quantile ``q`` in
``[0, 1]`` over ``N`` samples the rank is ``max(1, ceil(q * N))`` and
the percentile is the rank-th smallest sample.  ``q = 0`` therefore
returns the minimum, ``q = 1`` the maximum, a single-sample population
returns that sample for every ``q``, and an empty population raises
``ValueError`` — there is no sample to name.
"""

from __future__ import annotations

import bisect
import dataclasses
import functools
import math
import typing

#: The quantiles every latency report extracts (p50/p95/p99/p999).
QUANTILE_TARGETS: typing.Tuple[typing.Tuple[str, float], ...] = (
    ("p50", 0.50), ("p95", 0.95), ("p99", 0.99), ("p999", 0.999))


class Counter:
    """A named accumulating scalar."""

    def __init__(self, name: str = "counter") -> None:
        self.name = name
        self.value = 0.0
        self.events = 0

    def add(self, amount: float = 1.0) -> None:
        """Accumulate ``amount`` and bump the event count."""
        self.value += amount
        self.events += 1

    def reset(self) -> None:
        """Zero the accumulator for a fresh telemetry epoch."""
        self.value = 0.0
        self.events = 0

    @property
    def mean(self) -> float:
        """Average amount per recorded event (0 when empty)."""
        return self.value / self.events if self.events else 0.0

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value} over {self.events} events>"


class Breakdown:
    """Totals split across named categories (time or energy decomposition)."""

    def __init__(self, name: str = "breakdown") -> None:
        self.name = name
        self._parts: typing.Dict[str, float] = {}

    def add(self, category: str, amount: float) -> None:
        """Add ``amount`` to ``category`` (created on first use)."""
        self._parts[category] = self._parts.get(category, 0.0) + amount

    def get(self, category: str) -> float:
        """Total recorded for ``category`` (0 when absent)."""
        return self._parts.get(category, 0.0)

    def reset(self) -> None:
        """Drop every category for a fresh telemetry epoch."""
        self._parts.clear()

    @property
    def total(self) -> float:
        """Sum across all categories."""
        return sum(self._parts.values())

    @property
    def categories(self) -> typing.Tuple[str, ...]:
        """Categories in insertion order."""
        return tuple(self._parts)

    def fractions(self) -> typing.Dict[str, float]:
        """Category shares normalized to the total (empty dict if zero)."""
        total = self.total
        if total <= 0:
            return {}
        return {key: value / total for key, value in self._parts.items()}

    def as_dict(self) -> typing.Dict[str, float]:
        """Copy of the raw category totals."""
        return dict(self._parts)

    def merge(self, other: "Breakdown") -> None:
        """Fold another breakdown's categories into this one."""
        for category, amount in other._parts.items():
            self.add(category, amount)

    def scaled(self, factor: float) -> "Breakdown":
        """New breakdown with every category multiplied by ``factor``."""
        result = Breakdown(self.name)
        for category, amount in self._parts.items():
            result.add(category, amount * factor)
        return result

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v:.3g}" for k, v in self._parts.items())
        return f"<Breakdown {self.name}: {parts}>"


class TimeSeries:
    """(time, value) samples with time-weighted aggregation.

    Used for the IPC and power plots: record a sample whenever the
    quantity changes, then :meth:`resample` into fixed buckets matching
    the paper's plotting granularity.
    """

    def __init__(self, name: str = "series") -> None:
        self.name = name
        self.times: typing.List[float] = []
        self.values: typing.List[float] = []

    def __len__(self) -> int:
        return len(self.times)

    def record(self, time: float, value: float) -> None:
        """Append a sample; times must be non-decreasing."""
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"time went backwards: {time} < {self.times[-1]}"
            )
        self.times.append(time)
        self.values.append(value)

    def reset(self) -> None:
        """Drop all samples for a fresh telemetry epoch."""
        self.times.clear()
        self.values.clear()

    def value_at(self, time: float) -> float:
        """Step-function lookup: last recorded value at or before ``time``."""
        index = bisect.bisect_right(self.times, time) - 1
        if index < 0:
            return 0.0
        return self.values[index]

    def time_weighted_mean(self, start: float, end: float) -> float:
        """Mean of the step function over [start, end)."""
        if end <= start:
            raise ValueError(f"empty interval [{start}, {end})")
        area = 0.0
        cursor = start
        level = self.value_at(start)
        index = bisect.bisect_right(self.times, start)
        while index < len(self.times) and self.times[index] < end:
            area += level * (self.times[index] - cursor)
            cursor = self.times[index]
            level = self.values[index]
            index += 1
        area += level * (end - cursor)
        return area / (end - start)

    def integral(self, start: float, end: float) -> float:
        """Area under the step function over [start, end)."""
        if end <= start:
            return 0.0
        return self.time_weighted_mean(start, end) * (end - start)

    def resample(self, start: float, end: float,
                 buckets: int) -> typing.List[typing.Tuple[float, float]]:
        """Bucketed (midpoint time, mean value) pairs over [start, end)."""
        if buckets < 1:
            raise ValueError(f"need at least one bucket, got {buckets}")
        width = (end - start) / buckets
        samples = []
        for i in range(buckets):
            lo = start + i * width
            hi = lo + width
            samples.append((lo + width / 2, self.time_weighted_mean(lo, hi)))
        return samples


class Histogram:
    """Latency histogram with streaming mean/percentile support."""

    def __init__(self, name: str = "histogram") -> None:
        self.name = name
        self.samples: typing.List[float] = []
        self._sorted = True

    def add(self, value: float) -> None:
        """Record one sample."""
        if not self.samples:
            # First sample (fresh or after reset): trivially sorted, and
            # any stale False flag from a prior epoch must not survive —
            # the old skip-on-empty path left _sorted unrefreshed, so an
            # epoch-reusing histogram could sort needlessly or, worse,
            # trust a stale True from a subclass clearing samples by hand.
            self._sorted = True
        elif value < self.samples[-1]:
            self._sorted = False
        self.samples.append(value)

    def reset(self) -> None:
        """Drop all samples for a fresh telemetry epoch."""
        self.samples.clear()
        self._sorted = True

    def __len__(self) -> int:
        return len(self.samples)

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self.samples.sort()
            self._sorted = True

    @property
    def mean(self) -> float:
        """Arithmetic mean (0 when empty)."""
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    @property
    def minimum(self) -> float:
        """Smallest sample (nan when empty)."""
        return min(self.samples) if self.samples else math.nan

    @property
    def maximum(self) -> float:
        """Largest sample (nan when empty)."""
        return max(self.samples) if self.samples else math.nan

    def percentile(self, fraction: float) -> float:
        """Exact nearest-rank percentile, ``fraction`` in [0, 1].

        Semantics (the module-level contract shared with
        :class:`LatencySketch`): the result is the ``max(1, ceil(q *
        N))``-th smallest of the ``N`` recorded samples.  ``q = 0``
        returns the minimum, ``q = 1`` the maximum, and a single-sample
        histogram returns that sample for every ``q``.  Raises
        ``ValueError`` for an empty histogram — nearest-rank names an
        actual sample, and an empty population has none.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if not self.samples:
            raise ValueError("percentile of an empty histogram")
        self._ensure_sorted()
        rank = max(1, math.ceil(fraction * len(self.samples)))
        return self.samples[rank - 1]

    def quantiles(self) -> typing.Dict[str, float]:
        """The standard tail quantiles (:data:`QUANTILE_TARGETS`).

        Returns ``{"p50": ..., "p95": ..., "p99": ..., "p999": ...}``
        under the exact nearest-rank definition, or ``{}`` when empty.
        """
        if not self.samples:
            return {}
        return {name: self.percentile(q) for name, q in QUANTILE_TARGETS}


# ----------------------------------------------------------------------
# Mergeable latency sketch
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class SketchLayout:
    """The fixed log-linear bucket grid of a :class:`LatencySketch`.

    HDR-histogram style: values in ``[2**min_exp, 2**max_exp)`` are
    split into octaves, each octave into ``subbuckets`` linear
    sub-buckets, so relative bucket width — and therefore the worst-case
    relative quantile error — is ``1 / subbuckets`` everywhere on the
    grid.  The layout is part of the sketch's identity: two sketches
    merge only if their layouts are equal, and the spec string is
    stamped into BENCH provenance so compares never diff mismatched
    grids.
    """

    min_exp: int = 0
    max_exp: int = 40
    subbuckets: int = 16

    def __post_init__(self) -> None:
        if self.max_exp <= self.min_exp:
            raise ValueError(
                f"empty sketch range [2**{self.min_exp}, 2**{self.max_exp})")
        if self.subbuckets < 1:
            raise ValueError(
                f"need at least one sub-bucket, got {self.subbuckets}")

    @functools.cached_property
    def min_value(self) -> float:
        """Smallest value the grid resolves (lower values clamp)."""
        return float(2 ** self.min_exp)

    @functools.cached_property
    def max_value(self) -> float:
        """First value past the grid (higher values clamp)."""
        return float(2 ** self.max_exp)

    @functools.cached_property
    def bucket_count(self) -> int:
        """Total buckets on the grid."""
        return (self.max_exp - self.min_exp) * self.subbuckets

    def spec(self) -> str:
        """Canonical layout identity, e.g. ``log2[0,40)x16``."""
        return f"log2[{self.min_exp},{self.max_exp})x{self.subbuckets}"

    def index(self, value: float) -> int:
        """Bucket index for an in-range ``value`` (no clamping here)."""
        mantissa, exponent = math.frexp(value)  # value = m * 2**e, m in [.5,1)
        return ((exponent - 1 - self.min_exp) * self.subbuckets
                + int((mantissa - 0.5) * 2.0 * self.subbuckets))

    def bounds(self, index: int) -> typing.Tuple[float, float]:
        """``[lo, hi)`` value bounds of bucket ``index``."""
        if not 0 <= index < self.bucket_count:
            raise ValueError(f"bucket index {index} out of range")
        octave = self.min_exp + index // self.subbuckets
        sub = index % self.subbuckets
        base = float(2 ** octave)
        return (base * (1.0 + sub / self.subbuckets),
                base * (1.0 + (sub + 1) / self.subbuckets))


#: The one layout the stack uses (1 ns resolution up to ~18 simulated
#: minutes, 6.25% worst-case relative error).
DEFAULT_SKETCH_LAYOUT = SketchLayout()

#: Serialized sketch state (layout triple, sparse buckets, count,
#: clamped count, min, max) — the fragments payload.
SketchPayload = typing.Tuple[
    typing.Tuple[int, int, int],
    typing.List[typing.Tuple[int, int]],
    int, int, float, float]


class LatencySketch:
    """Fixed-bucket log-linear latency sketch with exact-rank quantiles.

    The sketch state is **integers only** (sparse bucket counts) plus
    exact float ``min``/``max``, so :meth:`merge` is associative,
    commutative, and byte-deterministic: folding sharded fragments in
    any grouping reproduces the serial sketch bit-for-bit.  Quantiles
    use the module-level nearest-rank definition over bucket
    populations; the returned value is the containing bucket's upper
    bound (clamped into ``[min, max]``), so it is within one bucket's
    relative width — ``1 / subbuckets`` — of the exact nearest-rank
    sample, and never below the median of what the bucket can hold.

    Values below the grid clamp into the first bucket, values at or
    above ``layout.max_value`` into the last; ``clamped`` counts both
    so saturation is observable.  NaN is rejected.
    """

    def __init__(self, name: str = "sketch",
                 layout: SketchLayout = DEFAULT_SKETCH_LAYOUT) -> None:
        self.name = name
        self.layout = layout
        self._counts: typing.Dict[int, int] = {}
        self.count = 0
        self.clamped = 0
        self.min_value = math.inf
        self.max_value = -math.inf

    def __len__(self) -> int:
        return self.count

    def add(self, value: float) -> None:
        """Record one sample (a latency in ns; NaN raises)."""
        if math.isnan(value):
            raise ValueError(f"cannot sketch NaN into {self.name!r}")
        layout = self.layout
        if value < layout.min_value:
            index = 0
            self.clamped += 1
        elif value >= layout.max_value:
            index = layout.bucket_count - 1
            self.clamped += 1
        else:
            # layout.index() inlined: one sample per chunk makes this
            # the hottest stats call in both engines.
            mantissa, exponent = math.frexp(value)
            subbuckets = layout.subbuckets
            index = ((exponent - 1 - layout.min_exp) * subbuckets
                     + int((mantissa - 0.5) * 2.0 * subbuckets))
        self._counts[index] = self._counts.get(index, 0) + 1
        self.count += 1
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value

    def reset(self) -> None:
        """Drop all samples for a fresh telemetry epoch."""
        self._counts.clear()
        self.count = 0
        self.clamped = 0
        self.min_value = math.inf
        self.max_value = -math.inf

    @property
    def mean(self) -> float:
        """Bucket-midpoint approximate mean (0 when empty).

        Computed on demand from the integer bucket counts in sorted
        bucket order, so it is a pure function of the (merge-exact)
        sketch state — identical for any merge grouping.
        """
        if not self.count:
            return 0.0
        total = 0.0
        for index in sorted(self._counts):
            lo, hi = self.layout.bounds(index)
            total += self._counts[index] * (lo + hi) / 2.0
        return total / self.count

    def percentile(self, fraction: float) -> float:
        """Nearest-rank quantile over the bucket populations.

        Rank definition matches :meth:`Histogram.percentile` exactly
        (``max(1, ceil(q * N))``); the value resolution is one bucket.
        Raises ``ValueError`` on an empty sketch.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if not self.count:
            raise ValueError(f"percentile of empty sketch {self.name!r}")
        rank = max(1, math.ceil(fraction * self.count))
        cumulative = 0
        for index in sorted(self._counts):
            cumulative += self._counts[index]
            if cumulative >= rank:
                upper = self.layout.bounds(index)[1]
                return min(max(upper, self.min_value), self.max_value)
        raise AssertionError("bucket counts inconsistent with count")

    def quantiles(self) -> typing.Dict[str, float]:
        """``{"p50", "p95", "p99", "p999"}`` (``{}`` when empty)."""
        if not self.count:
            return {}
        return {name: self.percentile(q) for name, q in QUANTILE_TARGETS}

    def merge(self, other: "LatencySketch") -> None:
        """Fold ``other`` into this sketch (associative, commutative).

        Layouts must be equal — except that a pristine (never-written)
        sketch adopts the incoming layout, so fragment replay can merge
        into a freshly created default container.
        """
        if other.layout != self.layout:
            if self.count == 0 and not self._counts:
                self.layout = other.layout
            else:
                raise ValueError(
                    f"cannot merge sketch layouts {self.layout.spec()} "
                    f"and {other.layout.spec()}")
        for index, bucket_count in other._counts.items():
            self._counts[index] = self._counts.get(index, 0) + bucket_count
        self.count += other.count
        self.clamped += other.clamped
        if other.min_value < self.min_value:
            self.min_value = other.min_value
        if other.max_value > self.max_value:
            self.max_value = other.max_value

    def to_payload(self) -> SketchPayload:
        """Picklable state in canonical (sorted-bucket) order."""
        return ((self.layout.min_exp, self.layout.max_exp,
                 self.layout.subbuckets),
                sorted(self._counts.items()),
                self.count, self.clamped, self.min_value, self.max_value)

    @classmethod
    def from_payload(cls, name: str,
                     payload: SketchPayload) -> "LatencySketch":
        """Rebuild a sketch from :meth:`to_payload` state."""
        (min_exp, max_exp, subbuckets), buckets, count, clamped, \
            minimum, maximum = payload
        sketch = cls(name, SketchLayout(min_exp, max_exp, subbuckets))
        sketch._counts = {int(index): int(value)
                          for index, value in buckets}
        sketch.count = count
        sketch.clamped = clamped
        sketch.min_value = minimum
        sketch.max_value = maximum
        return sketch

    def __repr__(self) -> str:
        return (f"<LatencySketch {self.name} {self.layout.spec()} "
                f"n={self.count}>")
