"""Statistics containers shared by every experiment.

The paper's figures need three shapes of data:

* scalar totals (bandwidth, total energy) — :class:`Counter`;
* per-category decompositions (Figures 16/17) — :class:`Breakdown`;
* time series sampled over a run (Figures 18-21) — :class:`TimeSeries`;
* latency distributions for the scheduler studies — :class:`Histogram`.
"""

from __future__ import annotations

import bisect
import math
import typing


class Counter:
    """A named accumulating scalar."""

    def __init__(self, name: str = "counter") -> None:
        self.name = name
        self.value = 0.0
        self.events = 0

    def add(self, amount: float = 1.0) -> None:
        """Accumulate ``amount`` and bump the event count."""
        self.value += amount
        self.events += 1

    def reset(self) -> None:
        """Zero the accumulator for a fresh telemetry epoch."""
        self.value = 0.0
        self.events = 0

    @property
    def mean(self) -> float:
        """Average amount per recorded event (0 when empty)."""
        return self.value / self.events if self.events else 0.0

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value} over {self.events} events>"


class Breakdown:
    """Totals split across named categories (time or energy decomposition)."""

    def __init__(self, name: str = "breakdown") -> None:
        self.name = name
        self._parts: typing.Dict[str, float] = {}

    def add(self, category: str, amount: float) -> None:
        """Add ``amount`` to ``category`` (created on first use)."""
        self._parts[category] = self._parts.get(category, 0.0) + amount

    def get(self, category: str) -> float:
        """Total recorded for ``category`` (0 when absent)."""
        return self._parts.get(category, 0.0)

    def reset(self) -> None:
        """Drop every category for a fresh telemetry epoch."""
        self._parts.clear()

    @property
    def total(self) -> float:
        """Sum across all categories."""
        return sum(self._parts.values())

    @property
    def categories(self) -> typing.Tuple[str, ...]:
        """Categories in insertion order."""
        return tuple(self._parts)

    def fractions(self) -> typing.Dict[str, float]:
        """Category shares normalized to the total (empty dict if zero)."""
        total = self.total
        if total <= 0:
            return {}
        return {key: value / total for key, value in self._parts.items()}

    def as_dict(self) -> typing.Dict[str, float]:
        """Copy of the raw category totals."""
        return dict(self._parts)

    def merge(self, other: "Breakdown") -> None:
        """Fold another breakdown's categories into this one."""
        for category, amount in other._parts.items():
            self.add(category, amount)

    def scaled(self, factor: float) -> "Breakdown":
        """New breakdown with every category multiplied by ``factor``."""
        result = Breakdown(self.name)
        for category, amount in self._parts.items():
            result.add(category, amount * factor)
        return result

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v:.3g}" for k, v in self._parts.items())
        return f"<Breakdown {self.name}: {parts}>"


class TimeSeries:
    """(time, value) samples with time-weighted aggregation.

    Used for the IPC and power plots: record a sample whenever the
    quantity changes, then :meth:`resample` into fixed buckets matching
    the paper's plotting granularity.
    """

    def __init__(self, name: str = "series") -> None:
        self.name = name
        self.times: typing.List[float] = []
        self.values: typing.List[float] = []

    def __len__(self) -> int:
        return len(self.times)

    def record(self, time: float, value: float) -> None:
        """Append a sample; times must be non-decreasing."""
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"time went backwards: {time} < {self.times[-1]}"
            )
        self.times.append(time)
        self.values.append(value)

    def reset(self) -> None:
        """Drop all samples for a fresh telemetry epoch."""
        self.times.clear()
        self.values.clear()

    def value_at(self, time: float) -> float:
        """Step-function lookup: last recorded value at or before ``time``."""
        index = bisect.bisect_right(self.times, time) - 1
        if index < 0:
            return 0.0
        return self.values[index]

    def time_weighted_mean(self, start: float, end: float) -> float:
        """Mean of the step function over [start, end)."""
        if end <= start:
            raise ValueError(f"empty interval [{start}, {end})")
        area = 0.0
        cursor = start
        level = self.value_at(start)
        index = bisect.bisect_right(self.times, start)
        while index < len(self.times) and self.times[index] < end:
            area += level * (self.times[index] - cursor)
            cursor = self.times[index]
            level = self.values[index]
            index += 1
        area += level * (end - cursor)
        return area / (end - start)

    def integral(self, start: float, end: float) -> float:
        """Area under the step function over [start, end)."""
        if end <= start:
            return 0.0
        return self.time_weighted_mean(start, end) * (end - start)

    def resample(self, start: float, end: float,
                 buckets: int) -> typing.List[typing.Tuple[float, float]]:
        """Bucketed (midpoint time, mean value) pairs over [start, end)."""
        if buckets < 1:
            raise ValueError(f"need at least one bucket, got {buckets}")
        width = (end - start) / buckets
        samples = []
        for i in range(buckets):
            lo = start + i * width
            hi = lo + width
            samples.append((lo + width / 2, self.time_weighted_mean(lo, hi)))
        return samples


class Histogram:
    """Latency histogram with streaming mean/percentile support."""

    def __init__(self, name: str = "histogram") -> None:
        self.name = name
        self.samples: typing.List[float] = []
        self._sorted = True

    def add(self, value: float) -> None:
        """Record one sample."""
        if not self.samples:
            # First sample (fresh or after reset): trivially sorted, and
            # any stale False flag from a prior epoch must not survive —
            # the old skip-on-empty path left _sorted unrefreshed, so an
            # epoch-reusing histogram could sort needlessly or, worse,
            # trust a stale True from a subclass clearing samples by hand.
            self._sorted = True
        elif value < self.samples[-1]:
            self._sorted = False
        self.samples.append(value)

    def reset(self) -> None:
        """Drop all samples for a fresh telemetry epoch."""
        self.samples.clear()
        self._sorted = True

    def __len__(self) -> int:
        return len(self.samples)

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self.samples.sort()
            self._sorted = True

    @property
    def mean(self) -> float:
        """Arithmetic mean (0 when empty)."""
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    @property
    def minimum(self) -> float:
        """Smallest sample (nan when empty)."""
        return min(self.samples) if self.samples else math.nan

    @property
    def maximum(self) -> float:
        """Largest sample (nan when empty)."""
        return max(self.samples) if self.samples else math.nan

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile, ``fraction`` in [0, 1]."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if not self.samples:
            raise ValueError("percentile of an empty histogram")
        self._ensure_sorted()
        rank = min(len(self.samples) - 1,
                   max(0, math.ceil(fraction * len(self.samples)) - 1))
        return self.samples[rank]
