"""Primitive event types for the simulation kernel.

Events move through three states: *pending* (created, not scheduled),
*triggered* (scheduled on the simulator heap with a value), and
*processed* (callbacks ran).  Processes wait on events by ``yield``-ing
them; the kernel wires the resumption up through the callback list.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator


class Event:
    """A one-shot occurrence in simulated time.

    Parameters
    ----------
    sim:
        Owning simulator.  Events can only be triggered on the simulator
        that created them.
    name:
        Optional label used in ``repr`` and error messages.
    """

    # Experiments allocate events by the million (one Timeout per
    # device latency); slotted instances skip the per-object __dict__,
    # which measurably cuts both allocation time and peak memory on the
    # full figure sweep.  Subclasses declare their own additions.
    __slots__ = ("sim", "name", "callbacks", "_value", "_ok",
                 "_triggered", "_processed", "__weakref__")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.callbacks: typing.List[typing.Callable[["Event"], None]] = []
        self._value: object = None
        self._ok = True
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled with a value."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run (the event is fully in the past)."""
        return self._processed

    @property
    def ok(self) -> bool:
        """False when the event carries a failure (exception) value."""
        return self._ok

    @property
    def value(self) -> object:
        """The payload the event was triggered with."""
        return self._value

    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        if self._triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self._triggered = True
        # Sanitizer (repro.analysis.racecheck): label the upcoming
        # schedule edge as a trigger (succeed -> wait causality) rather
        # than a plain schedule.  One guarded load when uninstrumented.
        sanitizer = self.sim._sanitizer
        if sanitizer is not None:
            sanitizer.on_trigger(self, True)
        self.sim._schedule(0.0, self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception; waiters will see it raised."""
        if self._triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._triggered = True
        sanitizer = self.sim._sanitizer
        if sanitizer is not None:
            sanitizer.on_trigger(self, False)
        self.sim._schedule(0.0, self)
        return self

    def __repr__(self) -> str:
        label = self.name or self.__class__.__name__
        state = (
            "processed" if self._processed
            else "triggered" if self._triggered
            else "pending"
        )
        return f"<{label} ({state})>"


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: object = None,
                 name: str = "") -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim, name or f"Timeout({delay})")
        self._value = value
        self._triggered = True
        sim._schedule(delay, self)


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause


class _Condition(Event):
    """Base for AllOf / AnyOf combinators."""

    __slots__ = ("_events", "_pending")

    def __init__(self, sim: "Simulator", events: typing.Sequence[Event],
                 name: str = "") -> None:
        super().__init__(sim, name)
        self._events = list(events)
        self._pending = 0
        for event in self._events:
            if event.sim is not sim:
                raise ValueError("all events must belong to the same simulator")
            if event.processed:
                self._observe(event)
            else:
                event.callbacks.append(self._observe)
                self._pending += 1
        self._check()

    def _observe(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(typing.cast(BaseException, event.value))
            return
        self._pending -= 1
        self._check()

    def _collect(self) -> typing.Dict["Event", object]:
        return {
            event: event.value for event in self._events if event.triggered
        }

    def _check(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when every child event has triggered successfully."""

    __slots__ = ()

    def _check(self) -> None:
        if not self._triggered and self._pending <= 0:
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Triggers when any child event triggers successfully."""

    __slots__ = ()

    def _check(self) -> None:
        if self._triggered:
            return
        if self._pending < len(self._events) or not self._events:
            self.succeed(self._collect())
