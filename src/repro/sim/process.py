"""Generator-driven simulation processes."""

from __future__ import annotations

import typing

from repro.sim.event import Event, Interrupt

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator


class Process(Event):
    """Wraps a generator so it can run inside the simulator.

    A process is itself an :class:`~repro.sim.event.Event`: it triggers
    with the generator's return value when the generator finishes, so
    other processes can ``yield`` it to join on completion.

    The generator may yield:

    * an :class:`Event` (including :class:`Timeout`, another
      :class:`Process`, or an :class:`AllOf`/:class:`AnyOf` condition) —
      the process suspends until that event triggers and receives the
      event's value at the resumption point;
    * nothing else — yielding any other object raises ``TypeError``
      inside the generator, per "errors should never pass silently".
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: typing.Generator,
                 name: str = "") -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        super().__init__(sim, name or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._waiting_on: Event | None = None
        # Kick off on the next kernel step so creation order does not
        # matter within a single simulated instant.
        bootstrap = Event(sim, name=f"{self.name}.bootstrap")
        bootstrap.callbacks.append(self._resume)
        bootstrap._triggered = True
        sim._schedule(0.0, bootstrap)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point."""
        if self._triggered:
            raise RuntimeError(f"{self!r} has already terminated")
        waiting = self._waiting_on
        if waiting is not None and self._resume in waiting.callbacks:
            waiting.callbacks.remove(self._resume)
        self._waiting_on = None
        self._step(Interrupt(cause), throw=True)

    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event.ok:
            self._step(event.value, throw=False)
        else:
            self._step(typing.cast(BaseException, event.value), throw=True)

    def _step(self, value: object, throw: bool) -> None:
        previous = self.sim._active
        self.sim._active = self
        # Sanitizer actor attribution: the happens-before report names
        # the process whose segment performed each watched access, not
        # just the anonymous event that resumed it.
        sanitizer = self.sim._sanitizer
        if sanitizer is not None:
            sanitizer.on_actor(self)
        try:
            if throw:
                target = self._generator.throw(
                    typing.cast(BaseException, value)
                )
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        finally:
            self.sim._active = previous
        if not isinstance(target, Event):
            message = TypeError(
                f"process {self.name!r} yielded {target!r}; "
                "processes may only yield Event instances"
            )
            self._step(message, throw=True)
            return
        if target.processed:
            # Already in the past; resume immediately on the next step.
            passthrough = Event(self.sim, name=f"{self.name}.passthrough")
            passthrough._ok = target.ok
            passthrough._value = target.value
            passthrough._triggered = True
            passthrough.callbacks.append(self._resume)
            self.sim._schedule(0.0, passthrough)
            self._waiting_on = passthrough
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target
