"""The simulation kernel: clock, event heap, and run loop.

Ordering contract
-----------------
The heap orders occurrences by ``(timestamp, tie-break counter)``.  The
counter increments per schedule, so **events that land on the same
simulated instant drain in FIFO schedule order**, and events scheduled
*by a callback at the current instant* sort after everything already
queued for that instant.  This FIFO tie-break is a documented, asserted
invariant (see :meth:`Simulator.run`): the batched same-timestamp drain,
the sharded parallel merge, and any future compiled/batched kernel all
reproduce results byte-for-byte only because equal-timestamp ordering
is deterministic.  :mod:`repro.analysis.racecheck` certifies which
workloads are *independent* of that ordering (and would therefore
survive a kernel that reorders within an instant); the seeded
``tiebreak_seed`` debug mode below is the mechanism it uses.
"""

from __future__ import annotations

import heapq
import itertools
import math
import random
import typing

from repro.sim.event import AllOf, AnyOf, Event, Timeout
from repro.sim.hostprof import HostProfilerHook, current_hostprof
from repro.sim.process import Process
from repro.sim.sampling import SamplerHook, current_sampling
from repro.sim.sanitizer import (
    KernelSanitizer,
    current_sanitizer,
    current_tiebreak_seed,
)
from repro.telemetry.tracer import Tracer, combine, current_tracer

GeneratorType = typing.Generator

#: One scheduled occurrence: ``(timestamp, tie-break counter, event)``.
HeapEntry = typing.Tuple[float, int, Event]

#: One entry of a captured event trace: ``(timestamp, event label)``.
TraceEntry = typing.Tuple[float, str]


class Simulator:
    """Heap-ordered discrete-event simulator.

    Simulated time is a float in **nanoseconds**.  All device models in
    this package express their latencies in nanoseconds so event
    timestamps compose without unit conversions.

    Typical usage::

        sim = Simulator()

        def worker():
            yield sim.timeout(10.0)
            return "done"

        proc = sim.process(worker())
        sim.run()
        assert sim.now == 10.0
    """

    def __init__(self, tracer: Tracer | None = None,
                 sanitizer: KernelSanitizer | None = None,
                 tiebreak_seed: int | None = None,
                 sampler: SamplerHook | None = None,
                 hostprof: HostProfilerHook | None = None) -> None:
        self._now = 0.0
        self._heap: typing.List[HeapEntry] = []
        self._counter = itertools.count()
        self._active: Process | None = None
        # Race-sanitizer hooks (repro.analysis.racecheck).  Explicit
        # argument wins over the ambient slot; with neither, every
        # guarded hook site sees None and the scheduling fast path is
        # left untouched (no per-schedule guard at all — the sanitized
        # variant is swapped in as an instance attribute only when a
        # sanitizer is installed).
        self._sanitizer: KernelSanitizer | None = (
            sanitizer if sanitizer is not None else current_sanitizer())
        self._sanitizing = self._sanitizer is not None
        if self._sanitizing:
            self._schedule = (  # type: ignore[method-assign]
                self._schedule_sanitized)
        # Tie-break shuffle debug mode: with a seed, run() drains each
        # same-timestamp batch in a seeded random permutation instead
        # of FIFO order (the shuffle oracle's lever).  None = FIFO.
        seed = (tiebreak_seed if tiebreak_seed is not None
                else current_tiebreak_seed())
        self._tiebreak_rng = (random.Random(seed) if seed is not None
                              else None)
        # Windowed time-series sampling (repro.telemetry.timeseries).
        # Explicit hook wins; otherwise the ambient provider (if any)
        # mints one per simulator.  Sampled runs drain through the
        # per-event branch of run() — the batched fast drain stays
        # untouched, so a disabled sampler costs nothing.
        if sampler is None:
            provider = current_sampling()
            if provider is not None:
                sampler = provider.create_sampler()
        self.sampler: SamplerHook | None = sampler
        self._sampling = sampler is not None
        # Host wall-clock profiling (repro.telemetry.hostprof).  Explicit
        # hook wins; otherwise the ambient provider (if any) supplies
        # one.  Profiled runs drain through _run_profiled — the run()
        # mode choice pays one extra elif, and the batched fast drain
        # stays untouched, so a disabled profiler costs nothing per
        # event.  The schedule-census variant of _schedule is swapped in
        # as an instance attribute (same trick as the sanitizer) so the
        # uninstrumented scheduling fast path keeps its guard-free body.
        if hostprof is None:
            hostprof_provider = current_hostprof()
            if hostprof_provider is not None:
                hostprof = hostprof_provider.create_hostprof()
        self.hostprof: HostProfilerHook | None = hostprof
        self._hostprofiling = hostprof is not None
        if self._hostprofiling:
            self._schedule = (  # type: ignore[method-assign]
                self._schedule_profiled_sanitized if self._sanitizing
                else self._schedule_profiled)
        # Explicit tracer and the ambient one (use_tracer) both observe
        # this kernel; with neither active this collapses to the null
        # tracer and step() pays one attribute load.  Binding happens at
        # construction so harnesses (determinism capture, experiment
        # tracing) observe every simulator built inside their scope.
        self.tracer: Tracer = combine(tracer, current_tracer())
        # The tracer is bound for the simulator's lifetime, so run()
        # branches once on this flag and unreached paths pay nothing:
        # untraced drains skip label construction and span bookkeeping
        # entirely.
        self._tracing = self.tracer.enabled
        # Kernel-event count for traced runs; counted only inside the
        # tracer.enabled branch of step() so untraced runs pay nothing.
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently being stepped, if any."""
        return self._active

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create an untriggered event owned by this simulator."""
        return Event(self, name)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event that fires ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def deadline(self, at: float, value: object = None) -> Timeout:
        """Create an event that fires at the absolute instant ``at``.

        The service layer schedules arrival injections and deadline
        sweeps against absolute simulated instants; expressing them as
        relative timeouts at every call site invites drift bugs.  NaN
        and past instants are rejected here (mirroring
        :meth:`_schedule`'s delay validation) so a bad deadline fails
        at creation, not as a negative-delay error deep in the heap.
        """
        if math.isnan(at):
            raise ValueError("cannot schedule a deadline at NaN")
        if at < self._now:
            raise ValueError(
                f"cannot schedule a deadline at {at} ns: clock already "
                f"at {self._now} ns")
        return Timeout(self, at - self._now, value)

    def process(self, generator: GeneratorType, name: str = "") -> Process:
        """Register a generator as a runnable process."""
        return Process(self, generator, name)

    def all_of(self, events: typing.Sequence[Event]) -> AllOf:
        """Event that triggers once all ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: typing.Sequence[Event]) -> AnyOf:
        """Event that triggers once any of ``events`` has triggered."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling and the run loop
    # ------------------------------------------------------------------
    def _schedule(self, delay: float, event: Event) -> None:
        # Fast path: one comparison admits every valid delay (NaN
        # compares false), so the hot path pays no math.isnan call.
        # The clock is never NaN (it only takes values this check has
        # already admitted), so the timestamp needs no separate check.
        if delay >= 0:
            heapq.heappush(self._heap,
                           (self._now + delay, next(self._counter), event))
            return
        if math.isnan(delay):
            raise ValueError(f"cannot schedule {event!r}: delay is NaN")
        raise ValueError(
            f"cannot schedule {event!r}: negative delay {delay}"
        )

    def _schedule_sanitized(self, delay: float, event: Event) -> None:
        # Installed over _schedule (instance attribute) only when a
        # sanitizer is bound, so the uninstrumented fast path keeps its
        # guard-free body.  The happens-before edge (scheduling task ->
        # event) is recorded only for successfully admitted delays.
        Simulator._schedule(self, delay, event)
        sanitizer = self._sanitizer
        if sanitizer is not None:
            sanitizer.on_schedule(event)

    def _schedule_profiled(self, delay: float, event: Event) -> None:
        # Swapped in over _schedule only when a host profiler is bound:
        # the schedule census (pushes per event kind) has to see the
        # `_schedule` fast path too, and a permanent guard there would
        # tax every uninstrumented run.
        Simulator._schedule(self, delay, event)
        hook = self.hostprof
        if hook is not None:
            hook.on_schedule(event)

    def _schedule_profiled_sanitized(self, delay: float,
                                     event: Event) -> None:
        # Profiler + sanitizer both bound: keep the sanitizer's hook
        # order (admit, then happens-before edge) and append the census.
        Simulator._schedule(self, delay, event)
        sanitizer = self._sanitizer
        if sanitizer is not None:
            sanitizer.on_schedule(event)
        hook = self.hostprof
        if hook is not None:
            hook.on_schedule(event)

    def peek(self) -> float:
        """Timestamp of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def fast_forward(self, now: float) -> None:
        """Advance the clock to ``now`` without processing any events.

        The compiled backend (:mod:`repro.sim.compiled`) computes a
        request batch's completion times arithmetically and then moves
        the clock here, so interleaved interpreted phases (a later
        ``run()``) resume from the same instant they would have reached
        event by event.  Refuses to skip pending events or rewind:
        both would silently desynchronize the two backends.
        """
        if self._heap:
            raise RuntimeError(
                f"fast_forward({now}) with {len(self._heap)} events "
                "still pending — drain them with run() first")
        if math.isnan(now) or now < self._now:
            raise ValueError(
                f"cannot fast-forward to {now} ns: clock already at "
                f"{self._now} ns")
        self._now = now

    def _event_label(self, event: Event) -> str:
        """Human-readable label for a processed event.

        Named events keep their name.  Anonymous events (timeouts,
        resource grants) are labeled ``ClassName:owner`` where the owner
        is the process waiting on them — without this, traces degrade
        to a wall of bare ``Timeout``/``Event`` entries.
        """
        if event.name:
            return event.name
        label = type(event).__name__
        for callback in event.callbacks:
            owner = getattr(callback, "__self__", None)
            if isinstance(owner, Process) and owner.name:
                return f"{label}:{owner.name}"
        return label

    def step(self) -> None:
        """Process exactly one event off the heap."""
        if not self._heap:
            raise RuntimeError("step() on an empty event heap")
        when, _, event = heapq.heappop(self._heap)
        self._now = when
        sanitizer = self._sanitizer
        if sanitizer is not None:
            sanitizer.begin_task(event, when, self._event_label(event))
        tracer = self.tracer
        if tracer.enabled:
            self.events_processed += 1
            tracer.kernel_event(when, self._event_label(event))
        callbacks, event.callbacks = event.callbacks, []
        event._processed = True
        for callback in callbacks:
            callback(event)

    def run(self, until: float | None = None) -> None:
        """Drain the event heap, optionally stopping at time ``until``.

        With ``until`` set, the clock is advanced to exactly ``until``
        even if no event lands on that instant, matching the convention
        of mainstream DES kernels.

        **FIFO tie-break invariant.**  Within one simulated instant,
        events are processed in schedule (counter) order — the batched
        drain below asserts it per batch.  Everything downstream that
        promises byte-identical results (serial-vs-sharded merge, the
        result cache, determinism-marked tests, the future compiled
        kernel) inherits this invariant; ``tiebreak_seed`` is the one
        sanctioned way to deviate from it, and exists precisely so
        :mod:`repro.analysis.racecheck` can measure which workloads
        depend on it.
        """
        if until is not None and math.isnan(until):
            raise ValueError("cannot run until NaN")
        if until is not None and until < self._now:
            raise ValueError(
                f"cannot run until {until} ns: clock already at {self._now} ns"
            )
        sampler = self.sampler
        if self._tiebreak_rng is not None:
            # The shuffle oracle's debug drain wins over profiling:
            # host timing under a randomized dispatch order is not
            # attributable to anything reproducible.
            self._run_shuffled(until)
        elif self._hostprofiling:
            self._run_profiled(until)
        elif self._tracing or self._sanitizing or self._sampling:
            while self._heap:
                when = self._heap[0][0]
                if until is not None and when > until:
                    break
                # Windows close *before* the events at `when` run, so a
                # sample written at exactly a boundary instant belongs
                # to the window that starts there.
                if sampler is not None:
                    sampler.advance(when)
                self.step()
        else:
            # Untraced fast drain: inline step() minus the tracer
            # branch, and batch same-timestamp events so the clock is
            # written (and the stop condition tested) once per instant
            # rather than once per event.  Ordering is unchanged — the
            # heap already yields equal timestamps in schedule
            # (counter) order, and events scheduled by a callback at
            # the current instant sort after everything already queued.
            heap = self._heap
            pop = heapq.heappop
            while heap:
                when = heap[0][0]
                if until is not None and when > until:
                    break
                self._now = when
                last_seq = -1
                while heap and heap[0][0] == when:
                    _, seq, event = pop(heap)
                    # Regression guard for the FIFO tie-break invariant
                    # racecheck certifies against: equal timestamps
                    # must drain in schedule-counter order.
                    assert seq > last_seq, (
                        "same-timestamp drain broke FIFO schedule order")
                    last_seq = seq
                    callbacks, event.callbacks = event.callbacks, []
                    event._processed = True
                    for callback in callbacks:
                        callback(event)
        if until is not None:
            # Close windows up to the stop time so a run that idles out
            # to `until` still materializes its trailing windows.
            if sampler is not None and until > self._now:
                sampler.advance(until)
            self._now = max(self._now, until)

    def _run_shuffled(self, until: float | None) -> None:
        """Debug drain: seeded permutation of each same-instant batch.

        Collects every event already queued for the current instant,
        shuffles the batch with the simulator's tie-break RNG, and
        processes it.  Events a callback schedules *at the same
        instant* form the next batch (shuffled separately), so
        causality is preserved: nothing runs before the task that
        scheduled it.  Each distinct seed explores one alternative
        tie-break order; FIFO is the identity the shuffle oracle diffs
        against.
        """
        rng = self._tiebreak_rng
        assert rng is not None
        heap = self._heap
        tracer = self.tracer if self._tracing else None
        sanitizer = self._sanitizer
        sampler = self.sampler
        batch: typing.List[HeapEntry] = []
        while heap:
            when = heap[0][0]
            if until is not None and when > until:
                break
            if sampler is not None:
                sampler.advance(when)
            self._now = when
            del batch[:]
            while heap and heap[0][0] == when:
                batch.append(heapq.heappop(heap))
            if len(batch) > 1:
                rng.shuffle(batch)
            for _, _, event in batch:
                if sanitizer is not None:
                    sanitizer.begin_task(event, when,
                                         self._event_label(event))
                if tracer is not None:
                    self.events_processed += 1
                    tracer.kernel_event(when, self._event_label(event))
                callbacks, event.callbacks = event.callbacks, []
                event._processed = True
                for callback in callbacks:
                    callback(event)

    def _run_profiled(self, until: float | None) -> None:
        """Host-profiled drain: batched like the fast drain, timed per
        dispatch.

        Composes with every other hook (tracer, sanitizer, sampler), so
        a profiled run observes exactly what an unprofiled run would.
        The hook's clock is read once before and once after each
        event's callbacks; together with :meth:`HostProfilerHook.
        begin_run`/``end_run`` the segments tile the drain's wall clock
        — the gap between one dispatch's end and the next one's start
        is the kernel's own heap work, so a collector that accounts the
        gaps attributes ~100% of measured ``run()`` time.
        """
        hook = self.hostprof
        assert hook is not None
        clock = hook.clock
        heap = self._heap
        pop = heapq.heappop
        tracer = self.tracer if self._tracing else None
        sanitizer = self._sanitizer
        sampler = self.sampler
        hook.begin_run(clock())
        while heap:
            when = heap[0][0]
            if until is not None and when > until:
                break
            if sampler is not None:
                sampler.advance(when)
            self._now = when
            batch_size = 0
            last_seq = -1
            while heap and heap[0][0] == when:
                _, seq, event = pop(heap)
                # Same FIFO tie-break regression guard as the batched
                # fast drain: equal timestamps in schedule order.
                assert seq > last_seq, (
                    "same-timestamp drain broke FIFO schedule order")
                last_seq = seq
                batch_size += 1
                if sanitizer is not None:
                    sanitizer.begin_task(event, when,
                                         self._event_label(event))
                if tracer is not None:
                    self.events_processed += 1
                    tracer.kernel_event(when, self._event_label(event))
                callbacks, event.callbacks = event.callbacks, []
                event._processed = True
                start = clock()
                for callback in callbacks:
                    callback(event)
                hook.on_dispatch(event, callbacks, start, clock())
            hook.on_batch(batch_size)
        hook.end_run(clock())
