"""Discrete-event simulation kernel used by every DRAM-less subsystem.

The engine is a small, from-scratch, simpy-style coroutine kernel:

* :class:`~repro.sim.engine.Simulator` owns the event heap and simulated
  clock (nanoseconds, floats).
* :class:`~repro.sim.event.Event` / :class:`~repro.sim.event.Timeout` are
  the primitive wait objects.
* :class:`~repro.sim.process.Process` drives a generator; processes
  ``yield`` events, timeouts, other processes, or condition combinators.
* :class:`~repro.sim.resource.Resource`, :class:`~repro.sim.resource.Store`
  and :class:`~repro.sim.resource.Channel` model contended hardware
  (ports, buses, buffers).
* :mod:`~repro.sim.stats` collects counters, time-weighted series and
  category breakdowns used to regenerate the paper's figures.
"""

from repro.sim.compiled import (
    BACKENDS,
    BackendDecision,
    CompiledKernel,
    backend_decisions,
    clear_backend_decisions,
    current_backend,
    use_backend,
)
from repro.sim.engine import Simulator
from repro.sim.event import AllOf, AnyOf, Event, Interrupt, Timeout
from repro.sim.hostprof import (
    HostProfilerHook,
    current_hostprof,
    use_hostprof,
)
from repro.sim.process import Process
from repro.sim.resource import Channel, Resource, Store
from repro.sim.sampling import SamplerHook, current_sampling, use_sampling
from repro.sim.sanitizer import (
    KernelSanitizer,
    current_sanitizer,
    current_tiebreak_seed,
    use_sanitizer,
    use_tiebreak,
)
from repro.sim.stats import (
    QUANTILE_TARGETS,
    Breakdown,
    Counter,
    Histogram,
    LatencySketch,
    SketchLayout,
    TimeSeries,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "BACKENDS",
    "BackendDecision",
    "Breakdown",
    "Channel",
    "CompiledKernel",
    "Counter",
    "Event",
    "Histogram",
    "HostProfilerHook",
    "Interrupt",
    "KernelSanitizer",
    "LatencySketch",
    "Process",
    "QUANTILE_TARGETS",
    "Resource",
    "SamplerHook",
    "Simulator",
    "SketchLayout",
    "Store",
    "TimeSeries",
    "Timeout",
    "backend_decisions",
    "clear_backend_decisions",
    "current_backend",
    "current_hostprof",
    "current_sampling",
    "current_sanitizer",
    "current_tiebreak_seed",
    "use_backend",
    "use_hostprof",
    "use_sampling",
    "use_sanitizer",
    "use_tiebreak",
]
