"""Storage substrates for the baseline systems (Table I).

* :mod:`~repro.storage.flash` — NAND flash dies in SLC/MLC/TLC grades;
* :mod:`~repro.storage.dram` — DRAM buffers (host, accelerator, SSD);
* :mod:`~repro.storage.ssd` — an emulated SSD: flash + FTL + 1 GB
  internal DRAM buffer, exposing a block interface;
* :mod:`~repro.storage.optane` — a PRAM-based SSD (Optane-like): PRAM
  medium behind the same block interface;
* :mod:`~repro.storage.nor_pram` — the 9x nm parallel PRAM with a NOR
  flash interface: byte-addressable but 16-bit serialized.
"""

from repro.storage.dram import DramBuffer
from repro.storage.flash import FlashCellType, NandFlash
from repro.storage.nor_pram import NorPram
from repro.storage.optane import PramSsd
from repro.storage.ssd import EmulatedSsd

__all__ = [
    "DramBuffer",
    "EmulatedSsd",
    "FlashCellType",
    "NandFlash",
    "NorPram",
    "PramSsd",
]
