"""DRAM buffers: host memory, accelerator memory, SSD caches.

DRAM here is a capacity-limited LRU block store with a flat access
latency and a shared-port bandwidth model.  It appears in three roles:
the host's main memory, the 1 GB internal buffer of every emulated SSD
and integrated accelerator (Section VI), and the accelerator-side DRAM
that DRAM-less removes.
"""

from __future__ import annotations

import collections
import typing

from repro.sim import Resource, Simulator

#: Row-hit DRAM access latency, ns (CAS-ish; coarse on purpose).
DRAM_ACCESS_NS = 50.0

#: Sustained DRAM bandwidth, bytes/ns (≈12.8 GB/s LPDDR-class).
DRAM_BANDWIDTH = 12.8


class DramBuffer:
    """Capacity-limited DRAM holding fixed-size blocks with LRU eviction."""

    def __init__(self, sim: Simulator, capacity_bytes: int,
                 block_bytes: int, name: str = "dram",
                 access_ns: float = DRAM_ACCESS_NS,
                 bandwidth: float = DRAM_BANDWIDTH) -> None:
        if capacity_bytes < block_bytes:
            raise ValueError("capacity smaller than one block")
        if block_bytes < 1:
            raise ValueError(f"block size must be >= 1, got {block_bytes}")
        self.sim = sim
        self.name = name
        self.capacity_blocks = capacity_bytes // block_bytes
        self.block_bytes = block_bytes
        self.access_ns = access_ns
        self.bandwidth = bandwidth
        self.port = Resource(sim, capacity=1, name=f"{name}.port")
        # block id -> dirty flag; OrderedDict gives LRU order.
        self._blocks: "collections.OrderedDict[int, bool]" = (
            collections.OrderedDict())
        self.hits = 0
        self.misses = 0
        self.bytes_accessed = 0
        self.evictions = 0

    def __contains__(self, block: int) -> bool:
        return block in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    # ------------------------------------------------------------------
    # Timed access
    # ------------------------------------------------------------------
    def access(self, size: int) -> typing.Generator:
        """Process body: one read-or-write touching ``size`` bytes."""
        if size < 1:
            raise ValueError(f"access size must be >= 1, got {size}")
        duration = self.access_ns + size / self.bandwidth
        yield self.sim.process(self.port.use(duration))
        self.bytes_accessed += size

    # ------------------------------------------------------------------
    # Block residency (zero-time bookkeeping; pair with access())
    # ------------------------------------------------------------------
    def lookup(self, block: int) -> bool:
        """Hit test; counts and refreshes LRU position on hit."""
        if block in self._blocks:
            self._blocks.move_to_end(block)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, block: int, dirty: bool = False
               ) -> typing.Tuple[int, bool] | None:
        """Add a block; returns the evicted ``(block, dirty)`` if any."""
        evicted = None
        if block not in self._blocks and (
                len(self._blocks) >= self.capacity_blocks):
            victim, victim_dirty = self._blocks.popitem(last=False)
            evicted = (victim, victim_dirty)
            self.evictions += 1
        previous_dirty = self._blocks.get(block, False)
        self._blocks[block] = previous_dirty or dirty
        self._blocks.move_to_end(block)
        return evicted

    def mark_dirty(self, block: int) -> None:
        """Flag a resident block as modified."""
        if block not in self._blocks:
            raise KeyError(f"block {block} not resident")
        self._blocks[block] = True

    def dirty_blocks(self) -> typing.List[int]:
        """Blocks that must be written back on flush."""
        return [block for block, dirty in self._blocks.items() if dirty]

    def drop(self, block: int) -> None:
        """Remove a block without writeback (after an explicit flush)."""
        self._blocks.pop(block, None)

    def clear_residency(self) -> None:
        """Drop every block without writeback.

        Only safe when no block is dirty (flush first); raises
        otherwise so data loss cannot pass silently.
        """
        dirty = self.dirty_blocks()
        if dirty:
            raise RuntimeError(
                f"{self.name}: clear_residency with dirty blocks {dirty[:5]}"
            )
        self._blocks.clear()
