"""An emulated SSD: flash dies + FTL + internal DRAM buffer.

Matches the paper's emulation setup: "All SSDs used for this evaluation
are emulated on a real system, and the size of their internal DRAM
buffer is 1GB."  The FTL is a page-mapped, append-style translation
layer: overwrites remap to a fresh physical page and block erases are
charged in the background once a block's worth of remaps accumulates.
"""

from __future__ import annotations

import typing

from repro.energy import EnergyAccount
from repro.sim import Resource, Simulator
from repro.storage.dram import DramBuffer
from repro.storage.flash import PAGE_BYTES, PAGES_PER_BLOCK, FlashCellType, NandFlash

#: Device-side command processing (NVMe queue + firmware) per request.
SSD_COMMAND_NS = 8_000.0

#: Internal DRAM buffer size (Section VI).
SSD_BUFFER_BYTES = 1 * 1024 * 1024 * 1024


class EmulatedSsd:
    """Block storage device with a page-mapped FTL and a DRAM cache."""

    def __init__(self, sim: Simulator,
                 cell_type: FlashCellType = FlashCellType.MLC,
                 buffer_bytes: int = SSD_BUFFER_BYTES,
                 parallelism: int = 16,
                 energy: EnergyAccount | None = None,
                 name: str = "ssd") -> None:
        self.sim = sim
        self.name = name
        self.flash = NandFlash(sim, cell_type, parallelism=parallelism,
                               name=f"{name}.flash")
        self.buffer = DramBuffer(sim, buffer_bytes, PAGE_BYTES,
                                 name=f"{name}.buffer")
        self.queue = Resource(sim, capacity=8, name=f"{name}.queue")
        self.energy = energy
        # Per-page write locks: the sub-page read-modify-write sequence
        # spans simulation yields, so concurrent writers to one page
        # must serialize or updates are lost.
        self._page_locks: typing.Dict[int, Resource] = {}
        # FTL: logical page -> physical page, plus a free-page cursor.
        self._map: typing.Dict[int, int] = {}
        # Payloads of buffered pages (residency metadata lives in
        # self.buffer; contents live here).
        self._payloads: typing.Dict[int, bytes] = {}
        self._next_physical = 0
        self._invalidated = 0
        self.commands = 0
        self.page_bytes = PAGE_BYTES

    # ------------------------------------------------------------------
    # Block interface (process bodies)
    # ------------------------------------------------------------------
    def read(self, address: int, size: int) -> typing.Generator:
        """Read ``size`` bytes at byte ``address``; returns the bytes."""
        out = bytearray()
        for page, offset, chunk in self._pages_of(address, size):
            data = yield from self._read_page(page)
            out += data[offset:offset + chunk]
        return bytes(out)

    def write(self, address: int, data: bytes) -> typing.Generator:
        """Write ``data`` at byte ``address``.

        Sub-page writes read-modify-write the page — the pollution
        effect the paper blames for buffer-based systems' energy waste
        on read-intensive workloads.
        """
        cursor = 0
        for page, offset, chunk in self._pages_of(address, len(data)):
            lock = self._page_locks.setdefault(
                page, Resource(self.sim, capacity=1,
                               name=f"{self.name}.p{page}.lock"))
            grant = lock.request()
            yield grant
            try:
                if chunk < PAGE_BYTES:
                    existing = yield from self._read_page(page)
                    merged = bytearray(existing)
                    merged[offset:offset + chunk] = (
                        data[cursor:cursor + chunk])
                    payload = bytes(merged)
                else:
                    payload = data[cursor:cursor + chunk]
                yield from self._write_page(page, payload)
            finally:
                lock.release(grant)
            cursor += chunk

    def flush(self) -> typing.Generator:
        """Write every dirty buffered page down to flash."""
        for page in self.buffer.dirty_blocks():
            payload = self._page_payload(page)
            yield from self._program(page, payload)
            self.buffer.drop(page)
            self._payloads.pop(page, None)

    def invalidate_buffer(self) -> None:
        """Drop all clean buffered pages (zero time).

        Conventional per-kernel-execution data management re-prepares
        device data each round; call after :meth:`flush`.
        """
        for page in list(self._payloads):
            self.buffer.drop(page)
            self._payloads.pop(page, None)

    # ------------------------------------------------------------------
    # Functional access (experiment setup)
    # ------------------------------------------------------------------
    def preload(self, address: int, data: bytes) -> None:
        """Zero-time data placement (no buffer residency)."""
        cursor = 0
        for page, offset, chunk in self._pages_of(address, len(data)):
            physical = self._map.get(page)
            existing = (self.flash.peek(physical) if physical is not None
                        else bytes(PAGE_BYTES))
            merged = bytearray(existing)
            merged[offset:offset + chunk] = data[cursor:cursor + chunk]
            if physical is None:
                physical = self._next_physical
                self._next_physical += 1
                self._map[page] = physical
            self.flash.poke(physical, bytes(merged))
            cursor += chunk

    def inspect(self, address: int, size: int) -> bytes:
        """Zero-time read-back of current contents.

        Sees the device's buffered pages first (acked writes are
        durable — power-loss-protected cache), then flash.
        """
        out = bytearray()
        for page, offset, chunk in self._pages_of(address, size):
            data = self._page_payload(page)
            out += data[offset:offset + chunk]
        return bytes(out)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _pages_of(self, address: int, size: int) -> typing.Iterator[
            typing.Tuple[int, int, int]]:
        if address < 0 or size < 0:
            raise ValueError(f"bad range: address={address} size={size}")
        cursor = address
        remaining = size
        while remaining > 0:
            page = cursor // PAGE_BYTES
            offset = cursor % PAGE_BYTES
            chunk = min(PAGE_BYTES - offset, remaining)
            yield page, offset, chunk
            cursor += chunk
            remaining -= chunk

    def _command_overhead(self) -> typing.Generator:
        grant = self.queue.request()
        yield grant
        try:
            yield self.sim.timeout(SSD_COMMAND_NS)
            self.commands += 1
            if self.energy is not None:
                self.energy.charge_power(
                    "storage", self.energy.model.ssd_controller_w,
                    SSD_COMMAND_NS)
        finally:
            self.queue.release(grant)

    def _read_page(self, page: int) -> typing.Generator:
        yield from self._command_overhead()
        if self.buffer.lookup(page):
            yield from self._buffer_access()
            return self._page_payload(page)
        physical = self._map.get(page)
        if physical is None:
            data = bytes(PAGE_BYTES)
        else:
            data = yield from self.flash.read_page(physical)
            if self.energy is not None:
                self.energy.charge(
                    "storage", self.energy.model.flash_read_nj_per_page)
        yield from self._install(page, data, dirty=False)
        return data

    def _write_page(self, page: int, payload: bytes) -> typing.Generator:
        yield from self._command_overhead()
        yield from self._install(page, payload, dirty=True)

    def _install(self, page: int, payload: bytes,
                 dirty: bool) -> typing.Generator:
        yield from self._buffer_access()
        self._payloads[page] = payload
        evicted = self.buffer.insert(page, dirty=dirty)
        if evicted is not None:
            victim, victim_dirty = evicted
            victim_payload = self._payloads.pop(victim, bytes(PAGE_BYTES))
            if victim_dirty:
                yield from self._program(victim, victim_payload)

    def _buffer_access(self) -> typing.Generator:
        yield from self.buffer.access(PAGE_BYTES)
        if self.energy is not None:
            self.energy.charge_bytes(
                "dram", self.energy.model.accel_dram_pj_per_byte, PAGE_BYTES)

    def _program(self, page: int, payload: bytes) -> typing.Generator:
        physical = self._next_physical
        self._next_physical += 1
        if page in self._map:
            self._invalidated += 1
        self._map[page] = physical
        yield from self.flash.program_page(physical, payload)
        if self.energy is not None:
            self.energy.charge(
                "storage", self.energy.model.flash_program_nj_per_page)
        # Background garbage collection: one block erase per block's
        # worth of invalidated pages (amortized, off the critical path).
        if self._invalidated >= PAGES_PER_BLOCK:
            self._invalidated -= PAGES_PER_BLOCK
            self.flash.blocks_erased += 1
            if self.energy is not None:
                self.energy.charge(
                    "storage", self.energy.model.flash_erase_nj_per_block)

    def _page_payload(self, page: int) -> bytes:
        payload = self._payloads.get(page)
        if payload is not None:
            return payload
        physical = self._map.get(page)
        return (self.flash.peek(physical) if physical is not None
                else bytes(PAGE_BYTES))
