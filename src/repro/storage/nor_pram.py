"""The 9x nm parallel PRAM with a serial NOR flash interface.

Used by the "NOR-intf" baseline: byte-addressable like the 3x nm part,
but every access is serialized through 16-bit low-level memory
operations over the legacy interface.  Section VI calibrates it
relative to DRAM-less's PRAM: "its legacy read and write are slower
than our new PRAM by 3x and 10x".
"""

from __future__ import annotations

import typing

from repro.energy import EnergyAccount
from repro.sim import Resource, Simulator

#: Access unit on the legacy interface: one 16-bit word.
WORD_BYTES = 2

#: Read of a 32-byte operand.  Calibrated against Section VI-A's
#: bandwidth claim: NOR read bandwidth is "2x worse than flash's
#: page-level bandwidth" (SLC: 16 KB / 25 us = 655 MB/s), so a 512 B
#: block read takes ~1.6 us = 16 x 100 ns.  At block level this is
#: also ~1.5x a DRAM-less block read, consistent with Figure 18's
#: DRAM-less-beats-NOR-by-42% IPC gap.
NOR_READ_32B_NS = 100.0

#: Write of a 32-byte operand.  Calibrated at the 512-byte block level:
#: a serialized block write takes 16 x 3.75 us = 60 us, ~3-6x the
#: 10-18 us a DRAM-less block program takes (Section VI-D: "legacy ...
#: write ... slower than our new PRAM by ... 10x" at operand level,
#: where the new PRAM's per-module 32 B program is effectively
#: 10-18 us / 16 thanks to bank striping).
NOR_WRITE_32B_NS = 3_750.0

_WORDS_PER_OPERAND = 32 // WORD_BYTES


class NorPram:
    """Byte-addressable PRAM behind a word-serialized NOR interface.

    The single interface port is the bottleneck: there is no internal
    parallelism to exploit, so all accesses queue.
    """

    def __init__(self, sim: Simulator,
                 energy: EnergyAccount | None = None,
                 name: str = "nor-pram") -> None:
        self.sim = sim
        self.name = name
        self.port = Resource(sim, capacity=1, name=f"{name}.port")
        self.energy = energy
        self._storage: typing.Dict[int, int] = {}  # word index -> value
        self.words_read = 0
        self.words_written = 0

    # ------------------------------------------------------------------
    # Byte-granular interface (process bodies)
    # ------------------------------------------------------------------
    def read(self, address: int, size: int) -> typing.Generator:
        """Read ``size`` bytes, one 16-bit word at a time."""
        words = self._word_span(address, size)
        duration = len(words) * (NOR_READ_32B_NS / _WORDS_PER_OPERAND)
        yield self.sim.process(self.port.use(duration))
        self.words_read += len(words)
        if self.energy is not None:
            self.energy.charge_bytes(
                "storage", self.energy.model.nor_read_pj_per_byte, size)
        raw = b"".join(
            self._storage.get(w, 0).to_bytes(WORD_BYTES, "little")
            for w in words)
        start = address - words[0] * WORD_BYTES
        return raw[start:start + size]

    def write(self, address: int, data: bytes) -> typing.Generator:
        """Write ``data``, serialized into 16-bit word programs."""
        words = self._word_span(address, len(data))
        duration = len(words) * (NOR_WRITE_32B_NS / _WORDS_PER_OPERAND)
        yield self.sim.process(self.port.use(duration))
        self._store(address, data)
        self.words_written += len(words)
        if self.energy is not None:
            self.energy.charge_bytes(
                "storage", self.energy.model.nor_write_pj_per_byte,
                len(data))

    # ------------------------------------------------------------------
    # Functional access
    # ------------------------------------------------------------------
    def preload(self, address: int, data: bytes) -> None:
        """Zero-time data placement."""
        self._store(address, data)

    def inspect(self, address: int, size: int) -> bytes:
        """Zero-time read-back."""
        words = self._word_span(address, size)
        raw = b"".join(
            self._storage.get(w, 0).to_bytes(WORD_BYTES, "little")
            for w in words)
        start = address - words[0] * WORD_BYTES
        return raw[start:start + size]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _word_span(address: int, size: int) -> typing.List[int]:
        if address < 0 or size < 1:
            raise ValueError(f"bad range: address={address} size={size}")
        first = address // WORD_BYTES
        last = (address + size - 1) // WORD_BYTES
        return list(range(first, last + 1))

    def _store(self, address: int, data: bytes) -> None:
        words = self._word_span(address, len(data))
        raw = bytearray(
            b"".join(self._storage.get(w, 0).to_bytes(WORD_BYTES, "little")
                     for w in words))
        start = address - words[0] * WORD_BYTES
        raw[start:start + len(data)] = data
        for i, word in enumerate(words):
            self._storage[word] = int.from_bytes(
                raw[i * WORD_BYTES:(i + 1) * WORD_BYTES], "little")
