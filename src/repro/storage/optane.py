"""A PRAM-based SSD (Optane-like), for Hetero-PRAM baselines.

Same block interface as :class:`~repro.storage.ssd.EmulatedSsd`, but
the medium is PRAM accessed in 32-byte chunks across a limited number
of parallel units.  Reads are fast (0.1 us per chunk, Table I); bulk
writes serialize page-sized requests into byte-granular programs —
exactly why the paper finds Hetero-PRAM *worse* than flash SSDs for
write-heavy workloads.
"""

from __future__ import annotations

import typing

from repro.energy import EnergyAccount
from repro.pram.constants import (
    PRAM_WRITE_OVERWRITE_NS,
    PRAM_WRITE_PRISTINE_NS,
)
from repro.sim import Resource, Simulator
from repro.storage.ssd import SSD_COMMAND_NS

#: Medium chunk: PRAM bank-level parallel I/O width.
CHUNK_BYTES = 32

#: Table I: NVM read 0.1 us for PRAM-based devices.
PRAM_SSD_READ_NS = 100.0

#: Concurrent chunk operations the device's internal channels sustain.
PRAM_SSD_PARALLELISM = 16


class PramSsd:
    """Block-interface SSD over a PRAM medium."""

    def __init__(self, sim: Simulator,
                 parallelism: int = PRAM_SSD_PARALLELISM,
                 energy: EnergyAccount | None = None,
                 name: str = "pram-ssd") -> None:
        if parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {parallelism}")
        self.sim = sim
        self.name = name
        self.units = Resource(sim, capacity=parallelism, name=f"{name}.units")
        self.queue = Resource(sim, capacity=8, name=f"{name}.queue")
        self.energy = energy
        self._storage: typing.Dict[int, bytes] = {}  # chunk id -> 32 B
        self._written: typing.Set[int] = set()
        self.chunks_read = 0
        self.chunks_written = 0
        self.commands = 0

    # ------------------------------------------------------------------
    # Block interface (process bodies)
    # ------------------------------------------------------------------
    def read(self, address: int, size: int) -> typing.Generator:
        """Read ``size`` bytes; chunk reads fan out over the units."""
        yield from self._command_overhead()
        chunks = list(self._chunks_of(address, size))
        pending = [self.sim.process(self._read_chunk(c)) for c, _, _ in chunks]
        results = yield self.sim.all_of(pending)
        out = bytearray()
        for (chunk, offset, span), proc in zip(chunks, pending):
            out += results[proc][offset:offset + span]
        return bytes(out)

    def write(self, address: int, data: bytes) -> typing.Generator:
        """Write ``data``; each 32-byte chunk is a separate program."""
        yield from self._command_overhead()
        chunks = list(self._chunks_of(address, len(data)))
        cursor = 0
        pending = []
        for chunk, offset, span in chunks:
            payload = data[cursor:cursor + span]
            pending.append(self.sim.process(
                self._write_chunk(chunk, offset, payload)))
            cursor += span
        yield self.sim.all_of(pending)

    def flush(self) -> typing.Generator:
        """No internal volatile cache: flush is instantaneous."""
        return
        yield  # pragma: no cover - makes this a generator

    # ------------------------------------------------------------------
    # Functional access
    # ------------------------------------------------------------------
    def preload(self, address: int, data: bytes) -> None:
        """Zero-time data placement."""
        cursor = 0
        for chunk, offset, span in self._chunks_of(address, len(data)):
            existing = bytearray(self._storage.get(chunk, bytes(CHUNK_BYTES)))
            existing[offset:offset + span] = data[cursor:cursor + span]
            self._storage[chunk] = bytes(existing)
            self._written.add(chunk)
            cursor += span

    def inspect(self, address: int, size: int) -> bytes:
        """Zero-time read-back."""
        out = bytearray()
        for chunk, offset, span in self._chunks_of(address, size):
            data = self._storage.get(chunk, bytes(CHUNK_BYTES))
            out += data[offset:offset + span]
        return bytes(out)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _chunks_of(address: int, size: int) -> typing.Iterator[
            typing.Tuple[int, int, int]]:
        if address < 0 or size < 0:
            raise ValueError(f"bad range: address={address} size={size}")
        cursor = address
        remaining = size
        while remaining > 0:
            chunk = cursor // CHUNK_BYTES
            offset = cursor % CHUNK_BYTES
            span = min(CHUNK_BYTES - offset, remaining)
            yield chunk, offset, span
            cursor += span
            remaining -= span

    def _command_overhead(self) -> typing.Generator:
        grant = self.queue.request()
        yield grant
        try:
            yield self.sim.timeout(SSD_COMMAND_NS)
            self.commands += 1
            if self.energy is not None:
                self.energy.charge_power(
                    "storage", self.energy.model.ssd_controller_w,
                    SSD_COMMAND_NS)
        finally:
            self.queue.release(grant)

    def _read_chunk(self, chunk: int) -> typing.Generator:
        yield self.sim.process(self.units.use(PRAM_SSD_READ_NS))
        self.chunks_read += 1
        if self.energy is not None:
            self.energy.charge_bytes(
                "storage", self.energy.model.pram_read_pj_per_byte,
                CHUNK_BYTES)
        return self._storage.get(chunk, bytes(CHUNK_BYTES))

    def _write_chunk(self, chunk: int, offset: int,
                     payload: bytes) -> typing.Generator:
        # The SSD's translation layer is log-structured: writes remap
        # to pre-RESET locations, so the SET-only latency applies; the
        # RESET pass happens in background wear management.  (Kept as a
        # parameter path: pass through PRAM_WRITE_OVERWRITE_NS in
        # studies of in-place devices.)
        duration = PRAM_WRITE_PRISTINE_NS
        yield self.sim.process(self.units.use(duration))
        existing = bytearray(self._storage.get(chunk, bytes(CHUNK_BYTES)))
        existing[offset:offset + len(payload)] = payload
        self._storage[chunk] = bytes(existing)
        self._written.add(chunk)
        self.chunks_written += 1
        if self.energy is not None:
            self.energy.charge_bytes(
                "storage", self.energy.model.pram_set_pj_per_byte,
                len(payload))
