"""NAND flash dies (Table I latencies).

Flash is page-granular: reads and programs move whole 16 KB pages
("flash's page-level bandwidth (i.e., 16KB parallel I/O)"), and erases
clear multi-page blocks.  Pages cannot be overwritten in place — the
FTL in :mod:`~repro.storage.ssd` remaps instead.
"""

from __future__ import annotations

import enum
import typing

from repro.sim import Resource, Simulator

#: Page and block geometry common to the modelled dies.
PAGE_BYTES = 16 * 1024
PAGES_PER_BLOCK = 256


class FlashCellType(enum.Enum):
    """Cell grades with Table I latencies (microseconds)."""

    SLC = ("slc", 25.0, 300.0, 2_000.0)
    MLC = ("mlc", 50.0, 800.0, 3_500.0)
    TLC = ("tlc", 80.0, 1_250.0, 2_274.0)

    def __init__(self, label: str, read_us: float, program_us: float,
                 erase_us: float) -> None:
        self.label = label
        self.read_ns = read_us * 1_000.0
        self.program_ns = program_us * 1_000.0
        self.erase_ns = erase_us * 1_000.0


class NandFlash:
    """A bank of flash dies with plane-level parallelism.

    ``parallelism`` models the number of independent die/plane units;
    concurrent page operations beyond that queue.
    """

    def __init__(self, sim: Simulator, cell_type: FlashCellType,
                 parallelism: int = 8, name: str = "flash") -> None:
        if parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {parallelism}")
        self.sim = sim
        self.cell_type = cell_type
        self.name = name
        self.planes = Resource(sim, capacity=parallelism,
                               name=f"{name}.planes")
        self._pages: typing.Dict[int, bytes] = {}
        self.pages_read = 0
        self.pages_programmed = 0
        self.blocks_erased = 0

    # ------------------------------------------------------------------
    # Timed operations (process bodies)
    # ------------------------------------------------------------------
    def read_page(self, page: int) -> typing.Generator:
        """Read one page; returns its bytes (zeros if never written)."""
        self._check_page(page)
        yield self.sim.process(self.planes.use(self.cell_type.read_ns))
        self.pages_read += 1
        return self._pages.get(page, bytes(PAGE_BYTES))

    def program_page(self, page: int, data: bytes) -> typing.Generator:
        """Program one full page (no partial programs on NAND)."""
        self._check_page(page)
        if len(data) != PAGE_BYTES:
            raise ValueError(
                f"flash programs whole {PAGE_BYTES}-byte pages, "
                f"got {len(data)} bytes"
            )
        if page in self._pages:
            raise ValueError(
                f"page {page} already programmed; erase its block first"
            )
        yield self.sim.process(self.planes.use(self.cell_type.program_ns))
        self._pages[page] = bytes(data)
        self.pages_programmed += 1

    def erase_block(self, block: int) -> typing.Generator:
        """Erase one block (all its pages return to unprogrammed)."""
        if block < 0:
            raise ValueError(f"negative block: {block}")
        yield self.sim.process(self.planes.use(self.cell_type.erase_ns))
        first = block * PAGES_PER_BLOCK
        for page in range(first, first + PAGES_PER_BLOCK):
            self._pages.pop(page, None)
        self.blocks_erased += 1

    # ------------------------------------------------------------------
    # Functional access
    # ------------------------------------------------------------------
    def peek(self, page: int) -> bytes:
        """Zero-time page read (verification)."""
        self._check_page(page)
        return self._pages.get(page, bytes(PAGE_BYTES))

    def poke(self, page: int, data: bytes) -> None:
        """Zero-time page preload (experiment setup)."""
        self._check_page(page)
        if len(data) != PAGE_BYTES:
            raise ValueError("poke must cover the whole page")
        self._pages[page] = bytes(data)

    def is_programmed(self, page: int) -> bool:
        """Whether the page currently holds data."""
        return page in self._pages

    @staticmethod
    def _check_page(page: int) -> None:
        if page < 0:
            raise ValueError(f"negative page: {page}")
