"""Workload characterization records (Table III).

Table III classifies each Polybench workload by write intensiveness
(output size per input size) and data volume.  The prose adds a second
axis we encode as :class:`Category`:

* *read-intensive*: durbin, dynpro, gemver, trisolv;
* *write-intensive*: chol, doitg, lu, seidel;
* *compute-intensive*: adi, fdtdap, floyd;
* *memory-intensive* (large read footprints): jaco1D, jaco2D, regd,
  trmm.
"""

from __future__ import annotations

import dataclasses
import enum


class Category(enum.Enum):
    """Workload behaviour classes used throughout Section VI."""

    READ_INTENSIVE = "read-intensive"
    WRITE_INTENSIVE = "write-intensive"
    COMPUTE_INTENSIVE = "compute-intensive"
    MEMORY_INTENSIVE = "memory-intensive"


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """One workload's knobs for the trace generator.

    ``input_kb``/``output_kb`` are the *reference* footprints; runs
    scale them with a factor so experiments choose their own volume
    (the paper inflated the original Polybench sizes by >10x; we go
    the other way for simulation tractability and note it in
    EXPERIMENTS.md).
    """

    name: str
    full_name: str
    category: Category
    input_kb: int
    output_kb: int
    compute_ops_per_byte: float
    reuse_factor: float = 0.0     # probability a block is re-touched
    sequential: bool = True       # False: shuffled (irregular) order
    dsp_intrinsics: bool = True   # Section VI embeds intrinsics
    #: How many compute-kernel sweeps the workload makes over its data.
    #: Conventional systems move data between host/storage and the
    #: accelerator *per kernel execution*; DRAM-less schedules all
    #: rounds internally (Section IV).
    kernel_rounds: int = 3

    def __post_init__(self) -> None:
        if self.input_kb < 1 or self.output_kb < 0:
            raise ValueError(f"{self.name}: bad footprint")
        if self.compute_ops_per_byte <= 0:
            raise ValueError(f"{self.name}: compute intensity must be > 0")
        if not 0.0 <= self.reuse_factor < 1.0:
            raise ValueError(f"{self.name}: reuse must be in [0, 1)")
        if self.kernel_rounds < 1:
            raise ValueError(f"{self.name}: need >= 1 kernel round")

    @property
    def write_ratio(self) -> float:
        """Output bytes as a fraction of all data moved (Figure 13)."""
        total = self.input_kb + self.output_kb
        return self.output_kb / total

    @property
    def total_kb(self) -> int:
        """Reference data volume."""
        return self.input_kb + self.output_kb

    @property
    def is_write_heavy(self) -> bool:
        """Above the one-third write-ratio line the paper treats as heavy."""
        return self.write_ratio >= 1.0 / 3.0
