"""Polybench workload models (Table III, Section VI).

The paper ports the Polybench suite to its platform, splits each
workload into per-PE compute kernels, and embeds DSP intrinsics.  We
reproduce the suite at the *characterization* level: each workload is a
:class:`~repro.workloads.characteristics.WorkloadSpec` (footprint,
read/write mix, compute intensity, access regularity), from which
:mod:`~repro.workloads.trace` generates deterministic per-agent
operation streams.
"""

from repro.workloads.characteristics import (
    Category,
    WorkloadSpec,
)
from repro.workloads.polybench import (
    POLYBENCH,
    all_workloads,
    workload,
    workloads_in,
)
from repro.workloads.trace import TraceBundle, generate_traces

__all__ = [
    "Category",
    "POLYBENCH",
    "TraceBundle",
    "WorkloadSpec",
    "all_workloads",
    "generate_traces",
    "workload",
    "workloads_in",
]
