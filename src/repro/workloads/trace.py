"""Deterministic trace generation from workload specs.

Each workload is split into per-agent kernels (the paper's porting
strategy): agent *i* owns an equal slice of the input and output
footprints.  Within its slice, an agent streams input blocks (in
order, or shuffled for irregular kernels), computes on each, revisits
recent blocks per the reuse factor, and emits output blocks paced to
the workload's write ratio.

All randomness flows through one seeded ``random.Random``, so a
(spec, agents, scale, seed) tuple always produces identical traces.
"""

from __future__ import annotations

import dataclasses
import random
import typing

from repro.accel.isa import ComputeOp, KernelOp, LoadOp, StoreOp
from repro.workloads.characteristics import WorkloadSpec

#: Block size traces operate at (the L2 request unit).
BLOCK_BYTES = 512

#: Operand size of a single load instruction (the PEs' .D width).
OPERAND_BYTES = 32

#: Default base address of the output region; far enough from the
#: input region for any scale used in the experiments.
OUTPUT_BASE = 64 * 1024 * 1024


@dataclasses.dataclass(frozen=True)
class TraceBundle:
    """Per-round, per-agent traces plus the regions they touch.

    ``rounds[r][a]`` is agent *a*'s trace for kernel round *r*.  Every
    round sweeps the full input and rewrites the output region — the
    iterative-solver shape of the suite (Jacobi/Seidel sweeps, LU
    elimination passes).
    """

    spec: WorkloadSpec
    rounds: typing.Tuple[
        typing.Tuple[typing.Tuple[KernelOp, ...], ...], ...]
    input_region: typing.Tuple[int, int]    # (address, size)
    output_region: typing.Tuple[int, int]   # (address, size)

    @property
    def traces(self) -> typing.Tuple[typing.Tuple[KernelOp, ...], ...]:
        """First-round traces (single-round callers)."""
        return self.rounds[0]

    @property
    def round_count(self) -> int:
        """Kernel rounds in this bundle."""
        return len(self.rounds)

    @property
    def input_bytes(self) -> int:
        """Input footprint of one round."""
        return self.input_region[1]

    @property
    def output_bytes(self) -> int:
        """Output footprint of one round."""
        return self.output_region[1]

    @property
    def total_bytes(self) -> int:
        """Data volume processed across all rounds (bandwidth
        denominator: every round reads the input and writes the
        output)."""
        return (self.input_bytes + self.output_bytes) * self.round_count

    @property
    def op_count(self) -> int:
        """Total trace length across rounds and agents."""
        return sum(len(trace) for round_traces in self.rounds
                   for trace in round_traces)


def generate_traces(spec: WorkloadSpec, agents: int = 7,
                    scale: float = 1.0, seed: int = 0,
                    output_base: int = OUTPUT_BASE,
                    rounds: int | None = None) -> TraceBundle:
    """Build deterministic per-round, per-agent traces for ``spec``.

    ``scale`` multiplies the reference footprint: 1.0 reproduces the
    spec's Table III volume, smaller values keep unit tests fast.
    ``rounds`` overrides the spec's kernel-round count.
    """
    if agents < 1:
        raise ValueError(f"need at least one agent, got {agents}")
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    round_count = spec.kernel_rounds if rounds is None else rounds
    if round_count < 1:
        raise ValueError(f"need >= 1 round, got {round_count}")
    rng = random.Random(f"{seed}:{spec.name}:{agents}")

    input_blocks = max(agents, int(spec.input_kb * 1024 * scale)
                       // BLOCK_BYTES)
    output_blocks = (max(agents, int(spec.output_kb * 1024 * scale)
                         // BLOCK_BYTES)
                     if spec.output_kb else 0)

    all_rounds = []
    for _ in range(round_count):
        traces = []
        for agent in range(agents):
            in_slice = _slice_for(agent, agents, input_blocks)
            out_slice = _slice_for(agent, agents, output_blocks)
            traces.append(tuple(_agent_trace(spec, rng, in_slice,
                                             out_slice, output_base)))
        all_rounds.append(tuple(traces))
    return TraceBundle(
        spec=spec,
        rounds=tuple(all_rounds),
        input_region=(0, input_blocks * BLOCK_BYTES),
        output_region=(output_base, output_blocks * BLOCK_BYTES),
    )


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _slice_for(agent: int, agents: int, blocks: int) -> range:
    per_agent = blocks // agents
    extra = blocks % agents
    start = agent * per_agent + min(agent, extra)
    length = per_agent + (1 if agent < extra else 0)
    return range(start, start + length)


def _agent_trace(spec: WorkloadSpec, rng: random.Random,
                 in_blocks: range, out_blocks: range,
                 output_base: int) -> typing.Iterator[KernelOp]:
    order = list(in_blocks)
    if not spec.sequential:
        rng.shuffle(order)

    out_iter = iter(out_blocks)
    outputs_total = len(out_blocks)
    inputs_total = max(1, len(order))
    emitted_outputs = 0
    compute_per_block = max(
        1, int(BLOCK_BYTES * spec.compute_ops_per_byte))
    recent: typing.List[int] = []

    for index, block in enumerate(order):
        address = block * BLOCK_BYTES
        # Touch the block operand by operand; the first load misses,
        # the rest hit L1 — modelled as one load plus compute sized
        # for the whole block.
        yield LoadOp(address, OPERAND_BYTES)
        yield ComputeOp(compute_per_block,
                        dsp_intrinsics=spec.dsp_intrinsics)
        # Reuse: revisit a recently-touched block (cache-friendly).
        if recent and rng.random() < spec.reuse_factor:
            revisit = rng.choice(recent)
            yield LoadOp(revisit * BLOCK_BYTES, OPERAND_BYTES)
            yield ComputeOp(max(1, compute_per_block // 4),
                            dsp_intrinsics=spec.dsp_intrinsics)
        recent.append(block)
        if len(recent) > 8:
            recent.pop(0)
        # Pace output emission so writes interleave with reads the way
        # the workload's write ratio dictates.
        due = (index + 1) * outputs_total // inputs_total
        while emitted_outputs < due:
            out_block = next(out_iter)
            yield StoreOp(output_base + out_block * BLOCK_BYTES,
                          BLOCK_BYTES)
            emitted_outputs += 1
    # Flush any rounding remainder.
    for out_block in out_iter:
        yield StoreOp(output_base + out_block * BLOCK_BYTES, BLOCK_BYTES)
