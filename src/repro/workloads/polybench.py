"""The ported Polybench suite (the 15 workloads of Figures 13-21).

Footprints are reference values in KB; runs scale them.  Compute
intensity (ops/byte) separates the compute-intensive group from the
streaming ones; ``sequential=False`` marks irregular access patterns
(triangular/recurrence kernels), which benefit most from the
multi-resource aware interleaving.
"""

from __future__ import annotations

import typing

from repro.workloads.characteristics import Category, WorkloadSpec

_C = Category

POLYBENCH: typing.Dict[str, WorkloadSpec] = {
    spec.name: spec for spec in [
        # -- read-intensive (durbin, dynpro, gemver, trisolv) ----------
        WorkloadSpec("durbin", "Toeplitz system solver (Durbin)",
                     _C.READ_INTENSIVE, input_kb=256, output_kb=16,
                     compute_ops_per_byte=2.0, reuse_factor=0.30,
                     sequential=False, kernel_rounds=2),
        WorkloadSpec("dynpro", "2-D dynamic programming",
                     _C.READ_INTENSIVE, input_kb=224, output_kb=16,
                     compute_ops_per_byte=2.5, reuse_factor=0.35,
                     sequential=False,
                     kernel_rounds=3),
        WorkloadSpec("gemver", "Vector mult. and matrix addition",
                     _C.READ_INTENSIVE, input_kb=288, output_kb=32,
                     compute_ops_per_byte=2.0, reuse_factor=0.25,
                     kernel_rounds=2),
        WorkloadSpec("trisolv", "Triangular solver",
                     _C.READ_INTENSIVE, input_kb=192, output_kb=16,
                     compute_ops_per_byte=1.5, reuse_factor=0.20,
                     sequential=False,
                     kernel_rounds=2),
        # -- write-intensive (chol, doitg, lu, seidel) ------------------
        WorkloadSpec("chol", "Cholesky decomposition",
                     _C.WRITE_INTENSIVE, input_kb=160, output_kb=160,
                     compute_ops_per_byte=4.0, reuse_factor=0.25,
                     sequential=False,
                     kernel_rounds=2),
        WorkloadSpec("doitg", "Multi-resolution analysis (doitgen)",
                     _C.WRITE_INTENSIVE, input_kb=128, output_kb=192,
                     compute_ops_per_byte=3.0, reuse_factor=0.20,
                     kernel_rounds=2),
        WorkloadSpec("lu", "LU decomposition",
                     _C.WRITE_INTENSIVE, input_kb=192, output_kb=160,
                     compute_ops_per_byte=5.0, reuse_factor=0.30,
                     sequential=False,
                     kernel_rounds=3),
        WorkloadSpec("seidel", "2-D Seidel stencil",
                     _C.WRITE_INTENSIVE, input_kb=192, output_kb=176,
                     compute_ops_per_byte=3.5, reuse_factor=0.35,
                     kernel_rounds=4),
        # -- compute-intensive (adi, fdtdap, floyd) --------------------
        WorkloadSpec("adi", "Alternating-direction implicit solver",
                     _C.COMPUTE_INTENSIVE, input_kb=160, output_kb=96,
                     compute_ops_per_byte=14.0, reuse_factor=0.40,
                     kernel_rounds=4),
        WorkloadSpec("fdtdap", "FDTD with anisotropic material (APML)",
                     _C.COMPUTE_INTENSIVE, input_kb=192, output_kb=64,
                     compute_ops_per_byte=16.0, reuse_factor=0.40,
                     kernel_rounds=4),
        WorkloadSpec("floyd", "Floyd-Warshall shortest paths",
                     _C.COMPUTE_INTENSIVE, input_kb=160, output_kb=96,
                     compute_ops_per_byte=12.0, reuse_factor=0.45,
                     kernel_rounds=3),
        # -- memory-intensive (jaco1D, jaco2D, regd, trmm) -------------
        WorkloadSpec("jaco1D", "1-D Jacobi stencil",
                     _C.MEMORY_INTENSIVE, input_kb=384, output_kb=128,
                     compute_ops_per_byte=1.0, reuse_factor=0.10,
                     kernel_rounds=4),
        WorkloadSpec("jaco2D", "2-D Jacobi stencil",
                     _C.MEMORY_INTENSIVE, input_kb=416, output_kb=128,
                     compute_ops_per_byte=1.2, reuse_factor=0.15,
                     kernel_rounds=4),
        WorkloadSpec("regd", "Regularity detection (reg_detect)",
                     _C.MEMORY_INTENSIVE, input_kb=352, output_kb=96,
                     compute_ops_per_byte=1.0, reuse_factor=0.10,
                     sequential=False, kernel_rounds=3),
        WorkloadSpec("trmm", "Triangular matrix multiply",
                     _C.MEMORY_INTENSIVE, input_kb=320, output_kb=96,
                     compute_ops_per_byte=1.5, reuse_factor=0.15,
                     sequential=False,
                     kernel_rounds=2),
    ]
}


def workload(name: str) -> WorkloadSpec:
    """Look up one workload by short name."""
    try:
        return POLYBENCH[name]
    except KeyError:
        known = ", ".join(sorted(POLYBENCH))
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None


def all_workloads() -> typing.List[WorkloadSpec]:
    """Every workload, in the suite's canonical (alphabetical) order."""
    return [POLYBENCH[name] for name in sorted(POLYBENCH)]


def workloads_in(category: Category) -> typing.List[WorkloadSpec]:
    """Workloads of one behaviour class."""
    return [spec for spec in all_workloads() if spec.category is category]
