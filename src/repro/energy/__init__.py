"""Energy accounting (Figures 17, 20b, 21b).

Energy is reconstructed from the same event streams as time: components
charge joules into an :class:`~repro.energy.model.EnergyAccount` either
per byte moved, per device operation, or as power × busy-time.
"""

from repro.energy.model import EnergyAccount, EnergyModel

__all__ = ["EnergyAccount", "EnergyModel"]
