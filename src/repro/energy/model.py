"""Per-component energy constants and the charging API.

Unit convention: simulated time is nanoseconds and 1 W = 1 nJ/ns, so
``energy_nj = power_w * time_ns`` with no conversion factor.  All
constants are rough but *relatively* calibrated — the paper's energy
claims (Figure 17: DRAM-less spends ~19-24% of what advanced
accelerated systems spend) are about which component dominates where,
not absolute joules.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.sim import Breakdown, TimeSeries


@dataclasses.dataclass(frozen=True)
class EnergyModel:
    """Energy coefficients for every modelled component."""

    # -- Host side -----------------------------------------------------
    host_cpu_active_w: float = 65.0       # host CPU package, busy
    host_dram_pj_per_byte: float = 20.0   # host DRAM copies
    pcie_pj_per_byte: float = 18.0        # PCIe transfer + SerDes
    pcie_request_nj: float = 500.0        # doorbell/completion per request

    # -- Accelerator ---------------------------------------------------
    pe_active_w: float = 1.0              # one PE crunching
    pe_idle_w: float = 0.30               # one PE stalled on memory
    pe_sleep_w: float = 0.02              # PSC-gated sleep state
    accel_dram_pj_per_byte: float = 15.0  # internal DRAM buffer traffic
    accel_dram_background_w: float = 0.8  # 1 GB DRAM refresh/background

    # -- PRAM subsystem ------------------------------------------------
    pram_read_pj_per_byte: float = 15.0
    pram_set_pj_per_byte: float = 450.0   # SET pass (long crystallize)
    pram_reset_pj_per_byte: float = 250.0  # RESET pass (short melt)
    pram_idle_w: float = 0.05             # no refresh: near-zero standby
    fpga_controller_w: float = 1.5        # 28 nm FPGA logic, active

    # -- Flash / SSD ---------------------------------------------------
    flash_read_nj_per_page: float = 30_000.0    # ~30 uJ per 16 KB page
    flash_program_nj_per_page: float = 180_000.0
    flash_erase_nj_per_block: float = 1_500_000.0
    ssd_controller_w: float = 2.5         # SSD controller + firmware

    # -- NOR-interface PRAM ---------------------------------------------
    nor_read_pj_per_byte: float = 45.0
    nor_write_pj_per_byte: float = 900.0

    # -- Embedded firmware CPU ------------------------------------------
    firmware_cpu_w: float = 1.2           # 3-core 500 MHz ARM, busy


class EnergyAccount:
    """A per-run energy ledger with an optional power time series.

    Categories follow Figure 17's decomposition: ``host``, ``pcie``,
    ``dram``, ``storage`` (flash/SSD), ``pram``, ``pe_compute``,
    ``pe_idle``, ``controller``.
    """

    def __init__(self, model: EnergyModel | None = None,
                 name: str = "energy") -> None:
        self.model = model or EnergyModel()
        self.breakdown = Breakdown(name)
        self.power_series = TimeSeries(f"{name}.power")
        self._cumulative = TimeSeries(f"{name}.cumulative")

    # ------------------------------------------------------------------
    # Charging API
    # ------------------------------------------------------------------
    def charge(self, category: str, nanojoules: float) -> None:
        """Charge raw energy into a category."""
        if nanojoules < 0:
            raise ValueError(f"negative energy: {nanojoules}")
        self.breakdown.add(category, nanojoules)

    def charge_power(self, category: str, watts: float,
                     duration_ns: float) -> None:
        """Charge power × time (1 W == 1 nJ/ns)."""
        if duration_ns < 0:
            raise ValueError(f"negative duration: {duration_ns}")
        self.charge(category, watts * duration_ns)

    def charge_bytes(self, category: str, pj_per_byte: float,
                     size: int) -> None:
        """Charge a per-byte movement cost (picojoules per byte)."""
        if size < 0:
            raise ValueError(f"negative size: {size}")
        self.charge(category, pj_per_byte * size / 1000.0)

    # ------------------------------------------------------------------
    # Time-series support for Figures 20/21
    # ------------------------------------------------------------------
    def sample_power(self, time_ns: float, watts: float) -> None:
        """Record the instantaneous core power level."""
        self.power_series.record(time_ns, watts)

    def sample_cumulative(self, time_ns: float) -> None:
        """Record total energy so far (for the cumulative plots)."""
        self._cumulative.record(time_ns, self.total_nj)

    @property
    def cumulative_series(self) -> TimeSeries:
        """(time, total nJ so far) samples."""
        return self._cumulative

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    @property
    def total_nj(self) -> float:
        """Total energy charged so far."""
        return self.breakdown.total

    @property
    def total_mj(self) -> float:
        """Total in millijoules, the scale the paper plots."""
        return self.total_nj / 1e6

    def by_category(self) -> typing.Dict[str, float]:
        """Copy of per-category totals (nJ)."""
        return self.breakdown.as_dict()
