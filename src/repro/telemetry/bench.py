"""Machine-readable benchmark trajectory: BENCH_*.json write/load/compare.

The benchmark suite historically emitted prose ``results/*.txt`` files
— attributable to nothing and comparable by eyeball only.  This module
gives every run a machine-readable artifact:

* :func:`collect_provenance` — git sha, experiment scale/seed/agents,
  UTC timestamp, python version: who produced the numbers.
* :class:`BenchReport` — per-figure scalar metrics, each tagged with a
  regression direction (``lower``/``higher``/``neutral``) and a unit.
* :func:`compare` — per-metric deltas between two reports; a change in
  the *bad* direction beyond the threshold is a regression.  This is
  the gate every future performance PR is judged against:
  ``python -m repro.telemetry compare BASELINE.json CANDIDATE.json``.

Schema (``repro.bench/1``)::

    {
      "schema": "repro.bench/1",
      "provenance": {"git_sha": "...", "timestamp": "...", ...},
      "metrics": {
        "fig12.hidden_fraction": {"value": 0.41,
                                   "better": "higher",
                                   "unit": "fraction"},
        ...
      }
    }
"""

from __future__ import annotations

import dataclasses
# Provenance stamps the *host* run that produced a result set, not
# simulated behavior — the one sanctioned wall-clock use in src.
import datetime  # noqa: SIM001
import json
import math
import os
import pathlib
import platform
import subprocess
import typing

SCHEMA = "repro.bench/1"

#: Legal regression directions for a metric.
DIRECTIONS = ("lower", "higher", "neutral")

#: Default relative-change threshold for flagging a regression.
DEFAULT_THRESHOLD = 0.05


@dataclasses.dataclass
class BenchMetric:
    """One scalar benchmark metric with its regression direction."""

    value: float
    better: str = "neutral"
    unit: str = ""

    def __post_init__(self) -> None:
        if self.better not in DIRECTIONS:
            raise ValueError(
                f"better must be one of {DIRECTIONS}, got {self.better!r}")
        if math.isnan(self.value):
            raise ValueError("benchmark metrics must not be NaN")

    def to_dict(self) -> typing.Dict[str, typing.Any]:
        """JSON representation."""
        return {"value": self.value, "better": self.better,
                "unit": self.unit}


@dataclasses.dataclass
class BenchReport:
    """One run's metrics plus the provenance that produced them."""

    provenance: typing.Dict[str, typing.Any]
    metrics: typing.Dict[str, BenchMetric]
    schema: str = SCHEMA

    def to_dict(self) -> typing.Dict[str, typing.Any]:
        """JSON representation (metrics in sorted order)."""
        return {
            "schema": self.schema,
            "provenance": dict(self.provenance),
            "metrics": {name: self.metrics[name].to_dict()
                        for name in sorted(self.metrics)},
        }

    @classmethod
    def from_dict(cls, payload: typing.Dict[str, typing.Any]
                  ) -> "BenchReport":
        """Parse a :meth:`to_dict` payload (schema-checked)."""
        schema = payload.get("schema")
        if schema != SCHEMA:
            raise ValueError(
                f"unsupported bench schema {schema!r} (want {SCHEMA!r})")
        raw_metrics = payload.get("metrics")
        if not isinstance(raw_metrics, dict):
            raise ValueError("bench report has no metrics mapping")
        metrics = {}
        for name, entry in raw_metrics.items():
            if not isinstance(entry, dict) or "value" not in entry:
                raise ValueError(f"metric {name!r} has no value")
            metrics[name] = BenchMetric(
                value=float(entry["value"]),
                better=str(entry.get("better", "neutral")),
                unit=str(entry.get("unit", "")))
        provenance = payload.get("provenance")
        return cls(provenance=dict(provenance) if isinstance(
            provenance, dict) else {}, metrics=metrics)


def git_sha(repo_root: typing.Union[str, pathlib.Path, None] = None,
            short: bool = True) -> str:
    """The working tree's commit sha (env ``REPRO_GIT_SHA`` wins).

    Falls back to ``"unknown"`` outside a git checkout so provenance
    never breaks a run.
    """
    override = os.environ.get("REPRO_GIT_SHA")
    if override:
        return override
    if repo_root is None:
        repo_root = pathlib.Path(__file__).resolve().parents[3]
    command = ["git", "-C", str(repo_root), "rev-parse"]
    if short:
        command.append("--short")
    command.append("HEAD")
    try:
        out = subprocess.run(command, capture_output=True, text=True,
                             timeout=10, check=False)
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def host_environment() -> typing.Dict[str, typing.Any]:
    """The host machine identity relevant to wall-clock metrics.

    Stamped into every provenance block so ``host_ns.*`` comparisons
    across machines can *warn* (see :func:`host_conflicts`) instead of
    silently diffing numbers measured on different silicon.
    """
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 0,
    }


def collect_provenance(
        scale: float | None = None,
        seed: int | None = None,
        agents: int | None = None,
        repo_root: typing.Union[str, pathlib.Path, None] = None,
) -> typing.Dict[str, typing.Any]:
    """Provenance block: attribute a result set to its producing run.

    ``REPRO_TIMESTAMP`` overrides the wall-clock stamp — CI and the
    serial-vs-parallel equivalence tests pin it so two runs of the same
    tree produce byte-identical artifacts.
    """
    provenance: typing.Dict[str, typing.Any] = {
        "git_sha": git_sha(repo_root),
        "timestamp": os.environ.get("REPRO_TIMESTAMP") or
        datetime.datetime.now(
            datetime.timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "python": platform.python_version(),
        "host": host_environment(),
    }
    if scale is not None:
        provenance["scale"] = scale
    if seed is not None:
        provenance["seed"] = seed
    if agents is not None:
        provenance["agents"] = agents
    if _ATTESTATIONS:
        provenance["attestations"] = {
            key: _ATTESTATIONS[key] for key in sorted(_ATTESTATIONS)}
    return provenance


# ----------------------------------------------------------------------
# Attestations
# ----------------------------------------------------------------------
#: Process-wide attestation registry merged into every provenance block.
_ATTESTATIONS: typing.Dict[str, typing.Any] = {}


def record_attestation(key: str, value: typing.Any) -> None:
    """Register a machine-checked claim about this process's runs.

    Attestations are facts an oracle *verified*, not configuration —
    e.g. the tie-break shuffle oracle records ``tiebreak_independent``
    after byte-diffing shuffled drain orders
    (:func:`repro.analysis.racecheck.certify_tiebreak_independence`).
    Every :func:`collect_provenance` call afterwards embeds them under
    ``attestations``, so BENCH artifacts carry the claim alongside the
    numbers it covers.  Re-recording a key overwrites it.
    """
    if not key:
        raise ValueError("attestation key must be non-empty")
    _ATTESTATIONS[key] = value


def clear_attestations() -> None:
    """Drop all recorded attestations (test isolation)."""
    _ATTESTATIONS.clear()


def stamp_provenance(path: typing.Union[str, pathlib.Path],
                     key: str, value: typing.Any) -> None:
    """Add one attestation to an already-written BENCH artifact.

    CI runs the shuffle oracle *after* the benchmark job wrote its
    BENCH_*.json; this rewrites the artifact in place with the new
    attestation, preserving everything else byte-for-byte (stable
    key order, same formatting as :func:`write_bench`).
    """
    report = load_bench(path)
    attestations = report.provenance.setdefault("attestations", {})
    if not isinstance(attestations, dict):
        raise ValueError(
            f"provenance attestations in {path} is not a mapping")
    attestations[key] = value
    write_bench(report, path)


def bench_filename(sha: str) -> str:
    """Canonical artifact name for one commit's run."""
    return f"BENCH_{sha}.json"


def write_bench(report: BenchReport,
                path: typing.Union[str, pathlib.Path]) -> None:
    """Serialize ``report`` to ``path`` (pretty-printed, stable order)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_bench(path: typing.Union[str, pathlib.Path]) -> BenchReport:
    """Parse a BENCH_*.json file."""
    with open(path, encoding="utf-8") as handle:
        return BenchReport.from_dict(json.load(handle))


# ----------------------------------------------------------------------
# Fragment merge
# ----------------------------------------------------------------------
def merge_reports(fragments: typing.Sequence[BenchReport],
                  provenance: typing.Optional[
                      typing.Dict[str, typing.Any]] = None) -> BenchReport:
    """Merge per-shard BENCH fragments into one report, deterministically.

    Sharded runs (parallel sweeps, split benchmark jobs) each write
    their own ``BENCH_*.json``; this folds them into a single report
    with metrics in sorted-name order regardless of shard completion
    order.  A metric appearing in two fragments must agree exactly —
    a silent last-writer-wins would let shards mask each other.
    """
    if not fragments:
        raise ValueError("no bench fragments to merge")
    metrics: typing.Dict[str, BenchMetric] = {}
    origin: typing.Dict[str, int] = {}
    for index, fragment in enumerate(fragments):
        for name, metric in fragment.metrics.items():
            existing = metrics.get(name)
            if existing is not None and (
                    existing.value != metric.value
                    or existing.better != metric.better):
                raise ValueError(
                    f"conflicting values for metric {name!r}: fragment "
                    f"{origin[name]} has {existing.value!r} "
                    f"({existing.better}), fragment {index} has "
                    f"{metric.value!r} ({metric.better})")
            metrics[name] = metric
            origin.setdefault(name, index)
    merged_provenance = dict(
        provenance if provenance is not None else fragments[0].provenance)
    merged_provenance["merged_fragments"] = len(fragments)
    return BenchReport(
        provenance=merged_provenance,
        metrics={name: metrics[name] for name in sorted(metrics)})


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------
#: Provenance keys that describe *how* latency metrics were measured.
#: Two reports disagreeing on any of these measured different things —
#: a p99 over 16 sub-buckets is not comparable to one over 4, window
#: means change with the window, and a report measured under the
#: compiled execution backend carries wall-clock metrics (e.g.
#: ``perf.compiled_speedup``) whose meaning depends on which engine ran
#: — so `compare` refuses to diff them rather than report a phantom
#: regression.
MEASUREMENT_KEYS: typing.Tuple[str, ...] = (
    "sketch", "timeseries_window_ns", "backend", "service")


def provenance_conflicts(
        baseline: BenchReport, candidate: BenchReport,
        keys: typing.Sequence[str] = MEASUREMENT_KEYS) -> typing.List[str]:
    """Measurement-configuration mismatches between two reports.

    Only keys present in *both* provenance blocks can conflict — a
    baseline recorded before a key existed stays comparable.
    """
    conflicts = []
    for key in keys:
        base = baseline.provenance.get(key)
        cand = candidate.provenance.get(key)
        if base is not None and cand is not None and base != cand:
            conflicts.append(
                f"{key}: baseline {base!r} vs candidate {cand!r}")
    return conflicts


#: Metric-name prefix whose values are host wall-clock (machine-bound).
HOST_METRIC_PREFIX = "host_ns."


def host_conflicts(baseline: BenchReport,
                   candidate: BenchReport) -> typing.List[str]:
    """Host-environment mismatches between two reports.

    Unlike :func:`provenance_conflicts` these never *refuse* a compare
    — simulated metrics are machine-independent — but ``host_ns.*``
    deltas across different machines are weather, not signal, so the
    CLI surfaces these as warnings when such metrics are present.
    Only keys recorded in *both* ``host`` blocks can conflict.
    """
    base = baseline.provenance.get("host")
    cand = candidate.provenance.get("host")
    if not isinstance(base, dict) or not isinstance(cand, dict):
        return []
    conflicts = []
    for key in sorted(set(base) & set(cand)):
        if base[key] != cand[key]:
            conflicts.append(
                f"host {key}: baseline {base[key]!r} vs "
                f"candidate {cand[key]!r}")
    return conflicts


def has_host_metrics(*reports: BenchReport) -> bool:
    """Whether any report carries ``host_ns.*`` wall-clock metrics."""
    return any(name.startswith(HOST_METRIC_PREFIX)
               for report in reports for name in report.metrics)


@dataclasses.dataclass
class MetricDelta:
    """One metric's movement between baseline and candidate."""

    name: str
    baseline: float
    candidate: float
    better: str
    unit: str
    relative_change: float
    verdict: str  # "regression" | "improvement" | "unchanged" | "neutral"


@dataclasses.dataclass
class CompareResult:
    """Everything :func:`compare` found between two reports."""

    deltas: typing.List[MetricDelta]
    missing: typing.List[str]   # in baseline, absent from candidate
    added: typing.List[str]     # in candidate, absent from baseline
    threshold: float

    @property
    def regressions(self) -> typing.List[MetricDelta]:
        """Deltas that moved in the bad direction beyond the threshold."""
        return [d for d in self.deltas if d.verdict == "regression"]

    @property
    def improvements(self) -> typing.List[MetricDelta]:
        """Deltas that moved in the good direction beyond the threshold."""
        return [d for d in self.deltas if d.verdict == "improvement"]


def _relative_change(baseline: float, candidate: float) -> float:
    if baseline == 0.0:
        return 0.0 if candidate == 0.0 else math.copysign(
            math.inf, candidate)
    return (candidate - baseline) / abs(baseline)


def compare(baseline: BenchReport, candidate: BenchReport,
            threshold: float = DEFAULT_THRESHOLD) -> CompareResult:
    """Per-metric comparison; direction-aware regression flagging."""
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    deltas: typing.List[MetricDelta] = []
    missing = sorted(set(baseline.metrics) - set(candidate.metrics))
    added = sorted(set(candidate.metrics) - set(baseline.metrics))
    for name in sorted(set(baseline.metrics) & set(candidate.metrics)):
        base = baseline.metrics[name]
        cand = candidate.metrics[name]
        relative = _relative_change(base.value, cand.value)
        better = cand.better or base.better
        if better == "neutral":
            verdict = "neutral"
        elif abs(relative) <= threshold:
            verdict = "unchanged"
        elif (relative > 0) == (better == "higher"):
            verdict = "improvement"
        else:
            verdict = "regression"
        deltas.append(MetricDelta(
            name=name, baseline=base.value, candidate=cand.value,
            better=better, unit=cand.unit or base.unit,
            relative_change=relative, verdict=verdict))
    return CompareResult(deltas=deltas, missing=missing, added=added,
                         threshold=threshold)


def render_compare(result: CompareResult) -> str:
    """Terminal rendering of a comparison (one line per metric)."""
    if not result.deltas and not result.missing and not result.added:
        return "no metrics in common"
    width = max((len(d.name) for d in result.deltas), default=6)
    width = max(width, *(len(n) for n in result.missing + result.added),
                6) if (result.missing or result.added) else width
    lines = [f"{'metric':<{width}}  {'baseline':>12}  {'candidate':>12}  "
             f"{'change':>8}  verdict"]
    lines.append(f"{'-' * width}  {'-' * 12}  {'-' * 12}  {'-' * 8}  "
                 f"{'-' * 11}")
    for delta in result.deltas:
        if math.isinf(delta.relative_change):
            change = "inf"
        else:
            change = f"{delta.relative_change:+.1%}"
        lines.append(
            f"{delta.name:<{width}}  {delta.baseline:>12.6g}  "
            f"{delta.candidate:>12.6g}  {change:>8}  {delta.verdict}")
    for name in result.missing:
        lines.append(f"{name:<{width}}  {'-':>12}  {'-':>12}  {'-':>8}  "
                     f"missing from candidate")
    for name in result.added:
        lines.append(f"{name:<{width}}  {'-':>12}  {'-':>12}  {'-':>8}  "
                     f"new in candidate")
    lines.append("")
    lines.append(
        f"{len(result.regressions)} regression(s), "
        f"{len(result.improvements)} improvement(s) beyond "
        f"{result.threshold:.0%} threshold; "
        f"{len(result.missing)} missing, {len(result.added)} new")
    return "\n".join(lines)


def compare_payload(
        result: CompareResult, baseline: BenchReport,
        candidate: BenchReport,
        warnings: typing.Optional[typing.Sequence[str]] = None,
) -> typing.Dict[str, typing.Any]:
    """The comparison as a machine-readable document (``compare --json``).

    The same delta data :func:`render_compare` prints, shaped for CI
    post-processing; infinities serialize as strings so the document
    stays strict JSON.
    """
    def finite(value: float) -> typing.Union[float, str]:
        return value if math.isfinite(value) else repr(value)

    return {
        "schema": "repro.bench-compare/1",
        "baseline_sha": baseline.provenance.get("git_sha", "?"),
        "candidate_sha": candidate.provenance.get("git_sha", "?"),
        "threshold": result.threshold,
        "deltas": [
            {"name": delta.name, "baseline": delta.baseline,
             "candidate": delta.candidate, "better": delta.better,
             "unit": delta.unit,
             "relative_change": finite(delta.relative_change),
             "verdict": delta.verdict}
            for delta in result.deltas
        ],
        "missing": list(result.missing),
        "added": list(result.added),
        "regressions": len(result.regressions),
        "improvements": len(result.improvements),
        "warnings": list(warnings) if warnings else [],
    }
