"""Windowed time-series sampling on *simulated* time.

Everything the stack reported before this module was an end-of-run
aggregate; transient behavior — queue buildup, write-pause stalls,
burst absorption — was invisible.  This module adds the time axis:

* :class:`SamplingConfig` is the ambient provider installed with
  :func:`repro.sim.sampling.use_sampling`.  Each
  :class:`~repro.sim.engine.Simulator` built inside its scope asks it
  for a fresh :class:`Sampler` (or ``None`` when metrics are off, which
  keeps the engine's zero-overhead fast drain).
* :class:`Sampler` closes fixed-width windows of simulated time as the
  engine advances and records one sample per window per instrument
  into ordinary registry :class:`~repro.sim.stats.TimeSeries`
  containers — so sharded runs merge byte-identically through
  :mod:`repro.telemetry.fragments` with no extra machinery.
* :class:`TimeWeightedTracker` turns instantaneous level changes
  (queue depth, pairs in use, awake PEs) into per-window time-weighted
  means.

Window semantics
----------------
Windows are ``[k*w, (k+1)*w)`` for window width ``w`` ns.  The engine
calls :meth:`Sampler.advance` with each event timestamp *before* the
events at that instant run, so an update at exactly a boundary belongs
to the window that *starts* there.  Window samples are recorded at the
window's start time.  Boundaries are computed from an integer window
index (``(k+1) * w``), never by repeated addition, so long runs do not
drift.  A partial final window (the run ends between boundaries) is
**dropped** — it would average over less simulated time than every
other sample and skew plots; run with ``until=`` landing on a boundary
to flush it.

With ``retention = R``, each series keeps only its most recent ``R``
windows (a bounded ring for long service-layer runs); ``None`` retains
everything.
"""

from __future__ import annotations

import csv
import json
import math
import os
import sys
import typing

from repro.sim.sampling import SamplerHook
from repro.sim.stats import LatencySketch, TimeSeries
from repro.telemetry.metrics import MetricsRegistry, current_metrics

#: Schema tag stamped into every exported time-series document.
TIMESERIES_SCHEMA = "repro.timeseries/1"

#: Default sampling window: 1 µs of simulated time.
DEFAULT_WINDOW_NS = 1000.0


class TimeWeightedTracker:
    """Per-window time-weighted mean of an instantaneous level.

    Components report *level changes* (:meth:`set_level` /
    :meth:`adjust`) at the current simulated time; the owning
    :class:`Sampler` closes each window and records the level's
    time-weighted mean over it.  The engine advances the sampler before
    event callbacks run, so every update arrives inside the currently
    open window — the tracker never has to split an update across
    boundaries.
    """

    def __init__(self, series: TimeSeries) -> None:
        self.series = series
        self._level = 0.0
        self._area = 0.0
        self._cursor = 0.0

    @property
    def level(self) -> float:
        """The current instantaneous level."""
        return self._level

    def set_level(self, now: float, level: float) -> None:
        """The level changed to ``level`` at simulated time ``now``."""
        if now > self._cursor:
            self._area += self._level * (now - self._cursor)
            self._cursor = now
        self._level = level

    def adjust(self, now: float, delta: float) -> None:
        """The level changed by ``delta`` at simulated time ``now``."""
        self.set_level(now, self._level + delta)

    def close(self, start: float, end: float) -> float:
        """Finish the window ``[start, end)``; returns its mean level."""
        self._area += self._level * (end - self._cursor)
        mean = self._area / (end - start)
        self._area = 0.0
        self._cursor = end
        return mean


class Sampler(SamplerHook):
    """Engine-driven window closer for one simulator.

    Instruments register through :meth:`track` (time-weighted levels)
    and :meth:`watch_gauge` (boundary-sampled callables).  Samples land
    in registry series at the supplied dotted paths, so everything
    downstream — snapshots, fragments merge, export — sees them as
    ordinary metrics.
    """

    def __init__(self, registry: MetricsRegistry, window_ns: float,
                 retention: typing.Optional[int] = None) -> None:
        if not window_ns > 0 or math.isinf(window_ns):
            raise ValueError(f"window must be positive/finite, got {window_ns}")
        if retention is not None and retention < 1:
            raise ValueError(f"retention must be >= 1, got {retention}")
        self.window_ns = window_ns
        self.retention = retention
        self._registry = registry
        self._window_index = 0
        self._next_boundary = window_ns
        self._trackers: typing.List[
            typing.Tuple[TimeSeries, TimeWeightedTracker]] = []
        self._watches: typing.List[
            typing.Tuple[TimeSeries, typing.Callable[[], float]]] = []

    # -- instrument registration ---------------------------------------
    def track(self, path: str) -> TimeWeightedTracker:
        """A tracker whose per-window means land at ``path``."""
        series = self._registry.series(path)
        tracker = TimeWeightedTracker(series)
        self._trackers.append((series, tracker))
        return tracker

    def watch_gauge(self, path: str,
                    read: typing.Callable[[], float]) -> None:
        """Sample ``read()`` at every window boundary into ``path``."""
        self._watches.append((self._registry.series(path), read))

    # -- engine hook ----------------------------------------------------
    def advance(self, now: float) -> None:
        """Close every window boundary at or before ``now``.

        One float compare on the hot path; the loop body only runs when
        a boundary was actually crossed.
        """
        if now < self._next_boundary:
            return
        window_ns = self.window_ns
        while self._next_boundary <= now:
            start = self._window_index * window_ns
            end = self._next_boundary
            for series, tracker in self._trackers:
                series.record(start, tracker.close(start, end))
                self._trim(series)
            for series, read in self._watches:
                series.record(start, read())
                self._trim(series)
            self._window_index += 1
            self._next_boundary = (self._window_index + 1) * window_ns

    def _trim(self, series: TimeSeries) -> None:
        retention = self.retention
        if retention is not None and len(series.times) > retention:
            del series.times[:-retention]
            del series.values[:-retention]


class SamplingConfig:
    """Ambient provider: one sampling policy, one sampler per simulator.

    Install with :func:`repro.sim.sampling.use_sampling`; simulators
    built inside the scope sample into the ambient metrics registry.
    ``create_sampler`` returns ``None`` when metrics are disabled, so a
    sampling scope without a registry costs nothing.
    """

    def __init__(self, window_ns: float = DEFAULT_WINDOW_NS,
                 retention: typing.Optional[int] = None) -> None:
        if not window_ns > 0 or math.isinf(window_ns):
            raise ValueError(f"window must be positive/finite, got {window_ns}")
        self.window_ns = window_ns
        self.retention = retention

    def create_sampler(self) -> typing.Optional[Sampler]:
        """A fresh :class:`Sampler` bound to the ambient registry."""
        registry = current_metrics()
        if not registry.enabled:
            return None
        return Sampler(registry, self.window_ns, self.retention)

    def spec(self) -> typing.Tuple[float, typing.Optional[int]]:
        """Hashable identity for cache keys and provenance."""
        return (self.window_ns, self.retention)


# ----------------------------------------------------------------------
# Export
# ----------------------------------------------------------------------
def export_document(registry: MetricsRegistry,
                    window_ns: float) -> typing.Dict[str, typing.Any]:
    """Every registry series and sketch as one JSON-ready document.

    Layout (schema ``repro.timeseries/1``)::

        {"schema": "repro.timeseries/1",
         "window_ns": 1000.0,
         "series": {path: {"t": [...], "v": [...]}},
         "sketches": {path: {"spec": "log2[0,40)x16", "count": N,
                             "clamped": C, "min": ..., "max": ...,
                             "buckets": [[index, count], ...],
                             "quantiles": {"p50": ..., ...}}}}
    """
    series: typing.Dict[str, typing.Any] = {}
    sketches: typing.Dict[str, typing.Any] = {}
    for path in registry.paths():
        container = registry.get(path)
        if isinstance(container, TimeSeries) and len(container):
            series[path] = {"t": list(container.times),
                            "v": list(container.values)}
        elif isinstance(container, LatencySketch) and container.count:
            sketches[path] = {
                "spec": container.layout.spec(),
                "count": container.count,
                "clamped": container.clamped,
                "min": container.min_value,
                "max": container.max_value,
                "buckets": sorted(container._counts.items()),
                "quantiles": container.quantiles(),
            }
    return {"schema": TIMESERIES_SCHEMA, "window_ns": window_ns,
            "series": series, "sketches": sketches}


def write_timeseries(path: str, document: typing.Dict[str, typing.Any]
                     ) -> None:
    """Write an exported document as JSON, or CSV for ``.csv`` paths.

    The CSV form is long-format ``series,t,v`` rows (sketch quantiles
    become ``<path>.pNN`` rows at ``t = -1``) for spreadsheet import;
    JSON is the lossless round-trippable form.
    """
    if path.endswith(".csv"):
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(["series", "t", "v"])
            for name in sorted(document["series"]):
                entry = document["series"][name]
                for t, v in zip(entry["t"], entry["v"]):
                    writer.writerow([name, t, v])
            for name in sorted(document["sketches"]):
                quantiles = document["sketches"][name]["quantiles"]
                for quantile_name in sorted(quantiles):
                    writer.writerow([f"{name}.{quantile_name}", -1,
                                     quantiles[quantile_name]])
        return
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_timeseries(path: str) -> typing.Dict[str, typing.Any]:
    """Load a JSON document written by :func:`write_timeseries`."""
    with open(path, encoding="utf-8") as handle:
        loaded = json.load(handle)
        if not isinstance(loaded, dict):
            raise ValueError(f"{path}: not a time-series document")
        return loaded


def validate_timeseries(document: typing.Dict[str, typing.Any]
                        ) -> typing.List[str]:
    """Schema-check an exported document; returns problem strings."""
    problems: typing.List[str] = []
    if document.get("schema") != TIMESERIES_SCHEMA:
        problems.append(
            f"schema is {document.get('schema')!r}, "
            f"expected {TIMESERIES_SCHEMA!r}")
    window = document.get("window_ns")
    if not isinstance(window, (int, float)) or not window > 0:
        problems.append(f"window_ns must be a positive number, got {window!r}")
    series = document.get("series")
    if not isinstance(series, dict):
        problems.append("missing 'series' mapping")
        series = {}
    for name, entry in series.items():
        times = entry.get("t") if isinstance(entry, dict) else None
        values = entry.get("v") if isinstance(entry, dict) else None
        if not isinstance(times, list) or not isinstance(values, list):
            problems.append(f"series {name!r}: needs 't' and 'v' arrays")
            continue
        if len(times) != len(values):
            problems.append(
                f"series {name!r}: {len(times)} times vs "
                f"{len(values)} values")
        if any(b < a for a, b in zip(times, times[1:])):
            problems.append(f"series {name!r}: timestamps not monotone")
    sketches = document.get("sketches")
    if not isinstance(sketches, dict):
        problems.append("missing 'sketches' mapping")
        sketches = {}
    for name, entry in sketches.items():
        if not isinstance(entry, dict) or "quantiles" not in entry:
            problems.append(f"sketch {name!r}: needs a 'quantiles' mapping")
            continue
        total = sum(count for _, count in entry.get("buckets", []))
        if total != entry.get("count"):
            problems.append(
                f"sketch {name!r}: bucket counts sum to {total}, "
                f"count says {entry.get('count')}")
    return problems


# ----------------------------------------------------------------------
# Terminal rendering (`python -m repro.telemetry watch`)
# ----------------------------------------------------------------------
_SPARK = "▁▂▃▄▅▆▇█"
_HEAT = " ░▒▓█"
#: ASCII fallbacks (same level counts) for dumb/non-UTF-8 terminals.
_SPARK_ASCII = "_.-:=+*#"
_HEAT_ASCII = " .:*#"


def supports_unicode(stream: typing.Optional[typing.TextIO] = None) -> bool:
    """Whether ``stream`` (stdout by default) can show the block glyphs.

    ``TERM=dumb`` or an encoding that cannot represent the sparkline
    alphabet (e.g. a C-locale pipe) means the unicode renderings would
    come out as mojibake or raise; callers fall back to ASCII glyphs.
    """
    if os.environ.get("TERM") == "dumb":
        return False
    if stream is None:
        stream = sys.stdout
    encoding = getattr(stream, "encoding", None) or "ascii"
    try:
        (_SPARK + _HEAT).encode(encoding)
    except (UnicodeEncodeError, LookupError):
        return False
    return True


def sparkline(values: typing.Sequence[float], width: int = 60,
              ascii_: bool = False) -> str:
    """A sparkline of ``values``, resampled to ``width`` cells.

    ``ascii_`` swaps the unicode block glyphs for ASCII ramps (same
    number of levels) on terminals :func:`supports_unicode` rejects.
    """
    glyphs = _SPARK_ASCII if ascii_ else _SPARK
    if not values:
        return ""
    cells = _resample(values, width)
    lo, hi = min(cells), max(cells)
    span = hi - lo
    if span <= 0:
        return glyphs[0] * len(cells)
    return "".join(
        glyphs[min(len(glyphs) - 1,
                   int((value - lo) / span * len(glyphs)))]
        for value in cells)


def heatline(values: typing.Sequence[float], width: int = 60,
             ascii_: bool = False) -> str:
    """Density shading of ``values`` — reads as a one-row heatmap."""
    glyphs = _HEAT_ASCII if ascii_ else _HEAT
    if not values:
        return ""
    cells = _resample(values, width)
    lo, hi = min(cells), max(cells)
    span = hi - lo
    if span <= 0:
        return glyphs[0] * len(cells)
    return "".join(
        glyphs[min(len(glyphs) - 1,
                  int((value - lo) / span * len(glyphs)))]
        for value in cells)


def _resample(values: typing.Sequence[float],
              width: int) -> typing.List[float]:
    if len(values) <= width:
        return list(values)
    out = []
    for i in range(width):
        lo = i * len(values) // width
        hi = max(lo + 1, (i + 1) * len(values) // width)
        chunk = values[lo:hi]
        out.append(sum(chunk) / len(chunk))
    return out


def render_watch(document: typing.Dict[str, typing.Any],
                 width: int = 60, heat: bool = False,
                 ascii_: bool = False) -> str:
    """The terminal view: one sparkline per series + quantile table."""
    lines: typing.List[str] = []
    series = document.get("series", {})
    window = document.get("window_ns", 0.0)
    lines.append(f"time series ({len(series)} series, "
                 f"window {window:g} ns)")
    render = heatline if heat else sparkline
    name_width = max((len(name) for name in series), default=0)
    for name in sorted(series):
        values = series[name]["v"]
        lines.append(
            f"  {name:<{name_width}}  {render(values, width, ascii_)}  "
            f"min={min(values):g} max={max(values):g} "
            f"last={values[-1]:g}" if values else
            f"  {name:<{name_width}}  (empty)")
    sketches = document.get("sketches", {})
    if sketches:
        lines.append("")
        lines.append(f"latency sketches ({len(sketches)})")
        name_width = max(len(name) for name in sketches)
        header = (f"  {'sketch':<{name_width}}  {'count':>8}  "
                  f"{'p50':>10}  {'p95':>10}  {'p99':>10}  {'p999':>10}")
        lines.append(header)
        for name in sorted(sketches):
            entry = sketches[name]
            quantiles = entry["quantiles"]
            lines.append(
                f"  {name:<{name_width}}  {entry['count']:>8}  "
                + "  ".join(f"{quantiles.get(q, float('nan')):>10.1f}"
                            for q in ("p50", "p95", "p99", "p999")))
    return "\n".join(lines)
