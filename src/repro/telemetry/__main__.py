"""CLI: validate telemetry artifacts.

``python -m repro.telemetry validate TRACE [--spanlog FILE]`` checks a
Perfetto JSON export against the trace-event schema (and optionally a
span log's line structure); exit status 0 means valid.  CI runs this on
the trace captured from a real experiment.
"""

from __future__ import annotations

import argparse
import json
import sys
import typing

from repro.telemetry.export import load_spanlog, validate_perfetto

_SPANLOG_TYPES = ("span", "instant", "command")


def _validate_spanlog(path: str) -> typing.List[str]:
    problems = []
    try:
        lines = load_spanlog(path)
    except (OSError, json.JSONDecodeError) as error:
        return [f"{path}: unreadable span log: {error}"]
    if not lines:
        problems.append(f"{path}: span log is empty")
    for index, line in enumerate(lines):
        kind = line.get("type")
        if kind not in _SPANLOG_TYPES:
            problems.append(f"{path}:{index + 1}: unknown type {kind!r}")
        elif kind == "command" and not isinstance(line.get("record"), dict):
            problems.append(f"{path}:{index + 1}: command without record")
        elif kind in ("span", "instant") and "track" not in line:
            problems.append(f"{path}:{index + 1}: {kind} without track")
    return problems


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Validate telemetry exports.")
    sub = parser.add_subparsers(dest="command", required=True)
    validate = sub.add_parser(
        "validate", help="check a Perfetto trace (and optional span log)")
    validate.add_argument("trace", help="Perfetto JSON file to validate")
    validate.add_argument("--spanlog", default=None,
                          help="also validate a JSON-lines span log")
    return parser


def main(argv: typing.Optional[typing.Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    problems: typing.List[str] = []
    try:
        with open(args.trace, encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        problems.append(f"{args.trace}: unreadable trace: {error}")
    else:
        problems.extend(
            f"{args.trace}: {problem}"
            for problem in validate_perfetto(document))
        events = document.get("traceEvents", [])
        if isinstance(events, list):
            print(f"{args.trace}: {len(events)} trace events")
    if args.spanlog is not None:
        problems.extend(_validate_spanlog(args.spanlog))
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        return 1
    print("telemetry artifacts valid")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
