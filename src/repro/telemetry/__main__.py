"""CLI: validate telemetry artifacts and compare benchmark trajectories.

``python -m repro.telemetry validate TRACE [--spanlog FILE]`` checks a
Perfetto JSON export against the trace-event schema (and optionally a
span log's line structure); exit status 0 means valid.  CI runs this on
the trace captured from a real experiment.

``python -m repro.telemetry compare BASELINE.json CANDIDATE.json``
diffs two ``BENCH_*.json`` reports metric by metric and exits 1 when
any metric moved in its bad direction beyond ``--threshold``.  CI runs
this as a **blocking** gate against ``benchmarks/BENCH_baseline.json``.

``python -m repro.telemetry merge OUT.json FRAGMENT.json [...]`` folds
per-shard BENCH fragments (parallel sweeps, split benchmark jobs) into
one report; conflicting duplicate metrics are an error.

``python -m repro.telemetry watch RESULTS.json`` renders an exported
time-series document (``--timeseries`` on the experiments CLI) as
terminal sparklines plus a latency-sketch quantile table; invalid
documents exit 1.

``python -m repro.telemetry flame PROFILE.json`` renders a speedscope
host-profile export (``--hostprof`` on the experiments CLI) as a
terminal top-N bucket view; the document is schema-validated first,
so CI can use this as the flamegraph artifact's validity gate.

``watch`` and ``flame`` auto-detect dumb/non-UTF-8 terminals and fall
back to ASCII glyphs; ``--ascii`` forces the fallback.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import typing

from repro.telemetry.bench import (
    DEFAULT_THRESHOLD,
    compare as compare_bench,
    compare_payload,
    has_host_metrics,
    host_conflicts,
    load_bench,
    merge_reports,
    provenance_conflicts,
    render_compare,
    write_bench,
)
from repro.telemetry.export import load_spanlog, validate_perfetto
from repro.telemetry.hostprof import (
    load_speedscope,
    render_flame,
    validate_speedscope,
)
from repro.telemetry.timeseries import (
    load_timeseries,
    render_watch,
    supports_unicode,
    validate_timeseries,
)

_SPANLOG_TYPES = ("span", "instant", "command")


def _validate_spanlog(path: str) -> typing.List[str]:
    problems = []
    try:
        lines = load_spanlog(path)
    except (OSError, json.JSONDecodeError) as error:
        return [f"{path}: unreadable span log: {error}"]
    if not lines:
        problems.append(f"{path}: span log is empty")
    for index, line in enumerate(lines):
        kind = line.get("type")
        if kind not in _SPANLOG_TYPES:
            problems.append(f"{path}:{index + 1}: unknown type {kind!r}")
        elif kind == "command" and not isinstance(line.get("record"), dict):
            problems.append(f"{path}:{index + 1}: command without record")
        elif kind in ("span", "instant") and "track" not in line:
            problems.append(f"{path}:{index + 1}: {kind} without track")
    return problems


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Validate telemetry exports.")
    sub = parser.add_subparsers(dest="command", required=True)
    validate = sub.add_parser(
        "validate", help="check a Perfetto trace (and optional span log)")
    validate.add_argument("trace", help="Perfetto JSON file to validate")
    validate.add_argument("--spanlog", default=None,
                          help="also validate a JSON-lines span log")
    compare = sub.add_parser(
        "compare",
        help="diff two BENCH_*.json reports; exit 1 on regressions")
    compare.add_argument("baseline", help="baseline BENCH_*.json")
    compare.add_argument("candidate", help="candidate BENCH_*.json")
    compare.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="relative change flagged as a regression "
             f"(default {DEFAULT_THRESHOLD:.0%})")
    compare.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the delta payload as JSON (same exit codes)")
    merge = sub.add_parser(
        "merge",
        help="fold per-shard BENCH_*.json fragments into one report")
    merge.add_argument("output", help="merged BENCH_*.json to write")
    merge.add_argument("fragments", nargs="+",
                       help="fragment BENCH_*.json files")
    watch = sub.add_parser(
        "watch",
        help="render an exported time-series document in the terminal")
    watch.add_argument("results", help="time-series JSON from --timeseries")
    watch.add_argument("--width", type=int, default=60,
                       help="sparkline width in cells (default 60)")
    watch.add_argument("--heat", action="store_true",
                       help="density shading instead of sparklines")
    watch.add_argument("--ascii", action="store_true", dest="force_ascii",
                       help="force ASCII glyphs (auto-detected for "
                            "dumb/non-UTF-8 terminals)")
    flame = sub.add_parser(
        "flame",
        help="render a speedscope host profile as a terminal top-N view")
    flame.add_argument("profile",
                       help="speedscope JSON from --hostprof")
    flame.add_argument("--top", type=int, default=20,
                       help="number of buckets to show (default 20)")
    flame.add_argument("--width", type=int, default=40,
                       help="bar width in cells (default 40)")
    flame.add_argument("--ascii", action="store_true", dest="force_ascii",
                       help="force ASCII glyphs (auto-detected for "
                            "dumb/non-UTF-8 terminals)")
    return parser


def _use_ascii(args: argparse.Namespace) -> bool:
    return bool(args.force_ascii) or not supports_unicode()


def _run_watch(args: argparse.Namespace) -> int:
    try:
        document = load_timeseries(args.results)
    except (OSError, json.JSONDecodeError, ValueError) as error:
        print(f"unreadable time-series document: {error}", file=sys.stderr)
        return 1
    problems = validate_timeseries(document)
    if problems:
        for problem in problems:
            print(f"{args.results}: {problem}", file=sys.stderr)
        return 1
    try:
        print(render_watch(document, width=args.width, heat=args.heat,
                           ascii_=_use_ascii(args)))
    except BrokenPipeError:
        # Piped into `head` and the reader closed early; exit quietly
        # (redirect stdout so the interpreter's exit flush stays calm).
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


def _run_flame(args: argparse.Namespace) -> int:
    try:
        document = load_speedscope(args.profile)
    except (OSError, json.JSONDecodeError, ValueError) as error:
        print(f"unreadable speedscope profile: {error}", file=sys.stderr)
        return 1
    problems = validate_speedscope(document)
    if problems:
        for problem in problems:
            print(f"{args.profile}: {problem}", file=sys.stderr)
        return 1
    try:
        print(render_flame(document, top=args.top, width=args.width,
                           ascii_=_use_ascii(args)))
    except BrokenPipeError:
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


def _run_merge(args: argparse.Namespace) -> int:
    try:
        fragments = [load_bench(path) for path in args.fragments]
        merged = merge_reports(fragments)
    except (OSError, json.JSONDecodeError, ValueError) as error:
        print(f"cannot merge bench fragments: {error}", file=sys.stderr)
        return 2
    write_bench(merged, args.output)
    print(f"merged {len(fragments)} fragment(s), "
          f"{len(merged.metrics)} metric(s) -> {args.output}")
    return 0


def _run_compare(args: argparse.Namespace) -> int:
    try:
        baseline = load_bench(args.baseline)
        candidate = load_bench(args.candidate)
    except (OSError, json.JSONDecodeError, ValueError) as error:
        print(f"unreadable bench report: {error}", file=sys.stderr)
        return 2
    conflicts = provenance_conflicts(baseline, candidate)
    if conflicts:
        print("reports measured with different configurations; "
              "refusing to compare:", file=sys.stderr)
        for conflict in conflicts:
            print(f"  {conflict}", file=sys.stderr)
        return 2
    # Host mismatches warn rather than refuse: simulated metrics stay
    # comparable across machines, but host_ns.* deltas would be noise.
    warnings: typing.List[str] = []
    if has_host_metrics(baseline, candidate):
        warnings = [
            f"host_ns.* metrics compared across differing hosts — "
            f"treat their deltas as advisory ({conflict})"
            for conflict in host_conflicts(baseline, candidate)]
    for warning in warnings:
        print(f"warning: {warning}", file=sys.stderr)
    result = compare_bench(baseline, candidate,
                           threshold=args.threshold)
    if args.as_json:
        print(json.dumps(compare_payload(result, baseline, candidate,
                                         warnings),
                         indent=2, sort_keys=True))
    else:
        base_sha = baseline.provenance.get("git_sha", "?")
        cand_sha = candidate.provenance.get("git_sha", "?")
        print(f"baseline {base_sha} -> candidate {cand_sha}")
        print(render_compare(result))
    return 1 if result.regressions else 0


def main(argv: typing.Optional[typing.Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "compare":
        return _run_compare(args)
    if args.command == "merge":
        return _run_merge(args)
    if args.command == "watch":
        return _run_watch(args)
    if args.command == "flame":
        return _run_flame(args)
    problems: typing.List[str] = []
    try:
        with open(args.trace, encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        problems.append(f"{args.trace}: unreadable trace: {error}")
    else:
        problems.extend(
            f"{args.trace}: {problem}"
            for problem in validate_perfetto(document))
        events = document.get("traceEvents", [])
        if isinstance(events, list):
            print(f"{args.trace}: {len(events)} trace events")
    if args.spanlog is not None:
        problems.extend(_validate_spanlog(args.spanlog))
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        return 1
    print("telemetry artifacts valid")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
