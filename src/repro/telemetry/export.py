"""Trace exporters: Perfetto/Chrome JSON, JSON-lines span log, validation.

Two consumers, one recording:

* **Perfetto / chrome://tracing** — :func:`write_perfetto` emits the
  Chrome Trace Event JSON object format (``{"traceEvents": [...]}``).
  Each distinct tracer *scope* becomes a Perfetto process; each track
  (``ch0.m0.p3``, ``ch0.bus``, ``pe2``, ...) becomes a named thread in
  that process.  Synchronous spans export as ``"X"`` complete events,
  in-flight request spans as ``"b"``/``"e"`` async pairs, instants as
  ``"i"``.  Timestamps are simulated nanoseconds divided by 1000 (the
  format's unit is microseconds; ``displayTimeUnit`` stays ``ns``).

* **Span log** — :func:`write_spanlog` emits one JSON object per line
  with a ``type`` discriminator (``span`` / ``instant`` / ``command``).
  Command lines carry the LPDDR2-NVM :class:`CommandRecord` payloads,
  so the same file feeds ``repro.analysis``'s protocol conformance
  checker — one capture, both analyses.

:func:`validate_perfetto` is the structural schema check used by CI and
``python -m repro.telemetry validate``.
"""

from __future__ import annotations

import json
import typing

from repro.telemetry.tracer import RecordingTracer, Span

#: Event phases the validator accepts (the subset we emit).
_KNOWN_PHASES = frozenset({"X", "B", "E", "b", "e", "i", "M", "C"})


def _track_order(tracer: RecordingTracer) -> typing.Dict[
        typing.Tuple[str, str], typing.Tuple[int, int]]:
    """Stable (scope, track) -> (pid, tid) assignment.

    Scopes are numbered in first-appearance order starting at pid 1;
    tracks within a scope likewise from tid 1.  Determinism of the
    export follows directly from determinism of the recording.
    """
    pids: typing.Dict[str, int] = {}
    tids: typing.Dict[typing.Tuple[str, str], typing.Tuple[int, int]] = {}
    per_scope: typing.Dict[str, int] = {}
    for span in list(tracer.spans) + list(tracer.instants):
        scope = span.scope
        if scope not in pids:
            pids[scope] = len(pids) + 1
            per_scope[scope] = 0
        key = (scope, span.track)
        if key not in tids:
            per_scope[scope] += 1
            tids[key] = (pids[scope], per_scope[scope])
    return tids


def perfetto_events(tracer: RecordingTracer
                    ) -> typing.List[typing.Dict[str, typing.Any]]:
    """Chrome Trace Event list for everything the tracer recorded."""
    tids = _track_order(tracer)

    events: typing.List[typing.Dict[str, typing.Any]] = []
    seen_pids: typing.Set[int] = set()
    for (scope, track), (pid, tid) in sorted(
            tids.items(), key=lambda item: item[1]):
        if pid not in seen_pids:
            seen_pids.add(pid)
            events.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": scope or "repro"},
            })
        events.append({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
            "args": {"name": track},
        })

    slices: typing.List[typing.Dict[str, typing.Any]] = []
    for span in tracer.spans:
        pid, tid = tids[(span.scope, span.track)]
        ts = span.start_ns / 1000.0
        if span.asynchronous:
            common = {
                "cat": span.track, "name": span.name,
                "id": span.span_id, "pid": pid, "tid": tid,
            }
            begin = dict(common)
            begin.update({"ph": "b", "ts": ts, "args": dict(span.args)})
            end = dict(common)
            end.update({"ph": "e", "ts": span.end_ns / 1000.0})
            slices.append(begin)
            slices.append(end)
        else:
            slices.append({
                "ph": "X", "name": span.name, "cat": span.track,
                "ts": ts, "dur": (span.end_ns - span.start_ns) / 1000.0,
                "pid": pid, "tid": tid, "args": dict(span.args),
            })
    for span in tracer.instants:
        pid, tid = tids[(span.scope, span.track)]
        slices.append({
            "ph": "i", "name": span.name, "cat": span.track,
            "ts": span.start_ns / 1000.0, "pid": pid, "tid": tid,
            "s": "t", "args": dict(span.args),
        })

    # Stable sort: viewers expect non-decreasing ts; ties keep emission
    # order so nesting ("X" parent before child at the same ts) survives.
    slices.sort(key=lambda event: event["ts"])
    return events + slices


def perfetto_document(tracer: RecordingTracer
                      ) -> typing.Dict[str, typing.Any]:
    """The complete Perfetto-loadable JSON object."""
    return {
        "traceEvents": perfetto_events(tracer),
        "displayTimeUnit": "ns",
        "otherData": {"producer": "repro.telemetry"},
    }


def write_perfetto(tracer: RecordingTracer, path: str) -> None:
    """Serialize :func:`perfetto_document` to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(perfetto_document(tracer), handle, indent=None,
                  separators=(",", ":"))
        handle.write("\n")


def validate_perfetto(document: typing.Any) -> typing.List[str]:
    """Structural check of a Chrome Trace Event document.

    Returns a list of problems (empty means valid).  Checks the
    container shape, per-event required fields by phase, and that
    timestamps are non-negative numbers.
    """
    problems: typing.List[str] = []
    if not isinstance(document, dict):
        return [f"top level must be an object, got {type(document).__name__}"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    if not events:
        problems.append("'traceEvents' is empty")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing event name")
        if not isinstance(event.get("pid"), int):
            problems.append(f"{where}: missing integer pid")
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
        if phase in ("b", "e") and "id" not in event:
            problems.append(f"{where}: async event without id")
        if phase == "i" and event.get("s") not in (None, "t", "p", "g"):
            problems.append(f"{where}: bad instant scope {event.get('s')!r}")
    return problems


# ----------------------------------------------------------------------
# JSON-lines span log (shared with repro.analysis)
# ----------------------------------------------------------------------
def spanlog_lines(tracer: RecordingTracer
                  ) -> typing.Iterator[typing.Dict[str, typing.Any]]:
    """All recorded items as span-log dicts, in simulated-time order."""
    items: typing.List[typing.Tuple[float, int,
                                    typing.Dict[str, typing.Any]]] = []
    for span in tracer.spans:
        items.append((span.start_ns, span.span_id,
                      {"type": "span", **span.to_dict()}))
    for span in tracer.instants:
        items.append((span.start_ns, span.span_id,
                      {"type": "instant", **span.to_dict()}))
    for order, record in enumerate(tracer.commands):
        payload = record.to_dict() if hasattr(record, "to_dict") else record
        issue = payload.get("time", 0.0) if isinstance(payload, dict) else 0.0
        items.append((float(issue), order,
                      {"type": "command", "record": payload}))
    items.sort(key=lambda item: (item[0], item[1]))
    for _, _, line in items:
        yield line


def write_spanlog(tracer: RecordingTracer, path: str) -> None:
    """One JSON object per line; ``type`` discriminates the payload."""
    with open(path, "w", encoding="utf-8") as handle:
        for line in spanlog_lines(tracer):
            handle.write(json.dumps(line, separators=(",", ":")))
            handle.write("\n")


def load_spanlog(path: str) -> typing.List[typing.Dict[str, typing.Any]]:
    """Parse a span-log file back into its line dicts."""
    lines: typing.List[typing.Dict[str, typing.Any]] = []
    with open(path, encoding="utf-8") as handle:
        for raw in handle:
            raw = raw.strip()
            if raw:
                lines.append(json.loads(raw))
    return lines


def spanlog_spans(path: str) -> typing.List[Span]:
    """The ``span`` lines of a span log, reconstructed as :class:`Span`."""
    spans = []
    for line in load_spanlog(path):
        if line.get("type") != "span":
            continue
        spans.append(Span(
            name=line["name"], track=line["track"],
            start_ns=line["start_ns"], end_ns=line["end_ns"],
            scope=line.get("scope", ""),
            asynchronous=bool(line.get("asynchronous", False)),
            span_id=int(line.get("span_id", 0)),
            args=dict(line.get("args", {}))))
    return spans
