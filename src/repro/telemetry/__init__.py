"""Telemetry for the DRAM-less stack: span tracing, metrics, exporters.

Three layers, all ambient-by-default and zero-overhead when disabled:

* :mod:`repro.telemetry.tracer` — hierarchical spans on simulated time
  (``request -> channel -> phase -> array access``); the null tracer
  allocates nothing.
* :mod:`repro.telemetry.metrics` — a registry naming the ``sim/stats``
  containers under dotted component paths (``pram.ch0.part3.rab_hits``).
* :mod:`repro.telemetry.export` — Perfetto/Chrome JSON, a JSON-lines
  span log shared with ``repro.analysis``, and a terminal summary.

:class:`Telemetry` bundles all three for the experiments CLI.

NOTE: ``tracer`` must stay import-light (stdlib only) — the simulator
kernel imports it, so anything heavier would cycle.  Keep the ``tracer``
import first here: partially-initialized-package imports from
``sim.engine`` rely on it being fully loaded.
"""

from repro.telemetry.tracer import (
    NULL_TRACER,
    KernelEventRecorder,
    MultiTracer,
    RecordingTracer,
    Span,
    Tracer,
    combine,
    current_tracer,
    use_tracer,
)

from repro.telemetry.metrics import (  # noqa: E402  (tracer must come first)
    NULL_METRICS,
    MetricsRegistry,
    current_metrics,
    use_metrics,
)

from repro.telemetry.export import (  # noqa: E402
    load_spanlog,
    perfetto_document,
    perfetto_events,
    spanlog_lines,
    spanlog_spans,
    validate_perfetto,
    write_perfetto,
    write_spanlog,
)

from repro.telemetry.timeseries import (  # noqa: E402
    DEFAULT_WINDOW_NS,
    TIMESERIES_SCHEMA,
    Sampler,
    SamplingConfig,
    TimeWeightedTracker,
    export_document,
    load_timeseries,
    render_watch,
    sparkline,
    supports_unicode,
    validate_timeseries,
    write_timeseries,
)

from repro.telemetry.session import Telemetry  # noqa: E402

from repro.telemetry.profile import (  # noqa: E402
    SEGMENTS,
    AttributionSummary,
    RequestAttribution,
    attribute_requests,
    summarize,
    verify_attribution,
)

from repro.telemetry.gauges import (  # noqa: E402
    IntervalGauge,
    LittlesLawCheck,
    TrackUtilization,
    capture_window,
    littles_law,
    request_depth_series,
    track_gauges,
    utilization_table,
)

from repro.telemetry.bench import (  # noqa: E402
    BenchMetric,
    BenchReport,
    CompareResult,
    MetricDelta,
    bench_filename,
    clear_attestations,
    collect_provenance,
    compare,
    load_bench,
    merge_reports,
    record_attestation,
    render_compare,
    stamp_provenance,
    write_bench,
)

from repro.telemetry.fragments import (  # noqa: E402
    HostProfFragment,
    MetricsFragment,
    TracerFragment,
    capture_hostprof,
    capture_metrics,
    capture_tracer,
    merge_hostprof,
    merge_metrics,
    merge_tracer,
)

from repro.telemetry.hostprof import (  # noqa: E402
    HostProfiler,
    classify_event,
    collapsed_stacks,
    load_speedscope,
    parse_collapsed,
    render_flame,
    render_summary,
    speedscope_document,
    validate_speedscope,
    write_collapsed,
    write_hostprof,
    write_speedscope,
)

from repro.telemetry.dashboard import (  # noqa: E402
    ExperimentProfile,
    build_profile,
    render_html,
    render_text,
)

__all__ = [
    "AttributionSummary",
    "BenchMetric",
    "BenchReport",
    "CompareResult",
    "DEFAULT_WINDOW_NS",
    "ExperimentProfile",
    "HostProfFragment",
    "HostProfiler",
    "IntervalGauge",
    "KernelEventRecorder",
    "LittlesLawCheck",
    "MetricDelta",
    "MetricsFragment",
    "MetricsRegistry",
    "MultiTracer",
    "NULL_METRICS",
    "NULL_TRACER",
    "RecordingTracer",
    "RequestAttribution",
    "SEGMENTS",
    "Sampler",
    "SamplingConfig",
    "Span",
    "TIMESERIES_SCHEMA",
    "Telemetry",
    "TimeWeightedTracker",
    "Tracer",
    "TracerFragment",
    "TrackUtilization",
    "attribute_requests",
    "bench_filename",
    "build_profile",
    "capture_hostprof",
    "capture_metrics",
    "capture_tracer",
    "capture_window",
    "classify_event",
    "clear_attestations",
    "collapsed_stacks",
    "collect_provenance",
    "combine",
    "compare",
    "current_metrics",
    "current_tracer",
    "export_document",
    "littles_law",
    "load_bench",
    "load_spanlog",
    "load_speedscope",
    "load_timeseries",
    "merge_hostprof",
    "merge_metrics",
    "merge_reports",
    "merge_tracer",
    "parse_collapsed",
    "perfetto_document",
    "perfetto_events",
    "record_attestation",
    "render_compare",
    "render_flame",
    "render_html",
    "render_summary",
    "render_text",
    "render_watch",
    "request_depth_series",
    "spanlog_lines",
    "spanlog_spans",
    "sparkline",
    "speedscope_document",
    "stamp_provenance",
    "summarize",
    "supports_unicode",
    "track_gauges",
    "use_metrics",
    "use_tracer",
    "utilization_table",
    "validate_perfetto",
    "validate_speedscope",
    "validate_timeseries",
    "verify_attribution",
    "write_bench",
    "write_collapsed",
    "write_hostprof",
    "write_perfetto",
    "write_spanlog",
    "write_speedscope",
    "write_timeseries",
]
