"""Telemetry for the DRAM-less stack: span tracing, metrics, exporters.

Three layers, all ambient-by-default and zero-overhead when disabled:

* :mod:`repro.telemetry.tracer` — hierarchical spans on simulated time
  (``request -> channel -> phase -> array access``); the null tracer
  allocates nothing.
* :mod:`repro.telemetry.metrics` — a registry naming the ``sim/stats``
  containers under dotted component paths (``pram.ch0.part3.rab_hits``).
* :mod:`repro.telemetry.export` — Perfetto/Chrome JSON, a JSON-lines
  span log shared with ``repro.analysis``, and a terminal summary.

:class:`Telemetry` bundles all three for the experiments CLI.

NOTE: ``tracer`` must stay import-light (stdlib only) — the simulator
kernel imports it, so anything heavier would cycle.  Keep the ``tracer``
import first here: partially-initialized-package imports from
``sim.engine`` rely on it being fully loaded.
"""

from repro.telemetry.tracer import (
    NULL_TRACER,
    KernelEventRecorder,
    MultiTracer,
    RecordingTracer,
    Span,
    Tracer,
    combine,
    current_tracer,
    use_tracer,
)

from repro.telemetry.metrics import (  # noqa: E402  (tracer must come first)
    NULL_METRICS,
    MetricsRegistry,
    current_metrics,
    use_metrics,
)

from repro.telemetry.export import (  # noqa: E402
    load_spanlog,
    perfetto_document,
    perfetto_events,
    spanlog_lines,
    spanlog_spans,
    validate_perfetto,
    write_perfetto,
    write_spanlog,
)

from repro.telemetry.session import Telemetry  # noqa: E402

__all__ = [
    "NULL_METRICS",
    "NULL_TRACER",
    "KernelEventRecorder",
    "MetricsRegistry",
    "MultiTracer",
    "RecordingTracer",
    "Span",
    "Telemetry",
    "Tracer",
    "combine",
    "current_metrics",
    "current_tracer",
    "load_spanlog",
    "perfetto_document",
    "perfetto_events",
    "spanlog_lines",
    "spanlog_spans",
    "use_metrics",
    "use_tracer",
    "validate_perfetto",
    "write_perfetto",
    "write_spanlog",
]
