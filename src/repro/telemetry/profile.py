"""Critical-path latency attribution over recorded spans.

PR 2's tracer answers "what happened when"; this pass answers *where
the nanoseconds of one request went*.  Every request span (the async
slices on the ``requests`` track) is decomposed into named segments:

``queue_wait``
    Time inside the request window covered by none of the request's
    own hardware spans — arbitration for the channel bus, RAB/RDB pair
    slots, the serial lock of the bare-metal policy, firmware
    admission, partition contention.
``bus``
    Shared-bus occupancy that is not the data burst itself: command
    packets (``cmd``) and program staging (``stage_program``).
``preactive`` / ``activate``
    The first two LPDDR2-NVM phases (RAB latch, tRP; RDB sense, tRCD).
``array_access``
    Array program time of writes (``program``) plus write recovery.
``rdb_burst``
    Phase 3: the RDB data burst over the channel bus.
``pcie``
    Host-link transfer time attributed to the request.
``retry``
    Resilience time under fault injection: verify reads, SET-only
    re-programs of failed words, and bad-row remap programs
    (``verify_read`` / ``retry_program`` / ``remap_program``).  Zero on
    fault-free runs.
``interleave_hidden``
    The Figure 12 quantity: burst time that ran *while another
    partition's array access was in flight* — latency the
    multi-resource interleaving scheduler hid.  Credited from the
    ``overlap`` argument the channel computes on each burst span, so
    per-request credits sum exactly to ``sched.interleave.overlap_ns``.

The sweep partitions the request window exactly: every instant of
``[submit, complete]`` lands in exactly one segment (overlapping
same-request spans are collapsed by a fixed priority), so the segment
durations *other than* ``interleave_hidden`` sum to the end-to-end
latency — equivalently, all segments minus the credited overlap sum to
it.  :func:`verify_attribution` enforces this invariant to float
precision; the Fig. 12 integration test runs it on a real capture.
"""

from __future__ import annotations

import dataclasses
import math
import typing

from repro.telemetry.tracer import Span

#: Attribution segments in report order.
SEGMENTS: typing.Tuple[str, ...] = (
    "queue_wait",
    "bus",
    "preactive",
    "activate",
    "array_access",
    "rdb_burst",
    "retry",
    "pcie",
    "interleave_hidden",
)

#: span name -> segment (spans with other names never attribute).
SPAN_SEGMENT: typing.Dict[str, str] = {
    "cmd": "bus",
    "stage_program": "bus",
    "stage_reset": "bus",
    "pre_active": "preactive",
    "activate": "activate",
    "program": "array_access",
    "write_recovery": "array_access",
    "read_burst": "rdb_burst",
    "transfer": "pcie",
    "verify_read": "retry",
    "retry_program": "retry",
    "remap_program": "retry",
}

#: Collapse order when same-request spans overlap in time (smaller
#: wins): the deepest pipeline stage claims the instant.
_PRIORITY: typing.Dict[str, int] = {
    "rdb_burst": 0,
    "activate": 1,
    "preactive": 2,
    "array_access": 3,
    "bus": 4,
    "pcie": 5,
    # Lowest priority: retry is a coarse recovery envelope — the
    # program/stage/burst spans inside it claim their own instants.
    "retry": 6,
}

#: Invariant tolerances: exact up to float summation error.
REL_TOL = 1e-9
ABS_TOL = 1e-6


@dataclasses.dataclass
class RequestAttribution:
    """Where one request's end-to-end latency went."""

    request_id: int
    op: str
    address: int
    size: int
    scope: str
    start_ns: float
    end_ns: float
    #: segment -> ns; the non-hidden segments partition the window.
    segments: typing.Dict[str, float]
    #: credited interleave overlap (== ``segments["interleave_hidden"]``).
    overlap_ns: float

    @property
    def latency_ns(self) -> float:
        """End-to-end simulated latency of the request."""
        return self.end_ns - self.start_ns

    @property
    def attributed_ns(self) -> float:
        """Sum of all segments minus the credited overlap.

        Equals :attr:`latency_ns` up to float summation error — the
        exactness invariant.
        """
        return math.fsum(self.segments.values()) - self.overlap_ns

    def dominant_segment(self) -> str:
        """The segment that claimed the most time (ties: report order)."""
        return max(SEGMENTS, key=lambda seg: self.segments.get(seg, 0.0))


@dataclasses.dataclass
class AttributionSummary:
    """Aggregate view of many request attributions."""

    request_count: int
    total_latency_ns: float
    segment_totals: typing.Dict[str, float]
    overlap_total_ns: float

    def segment_means(self) -> typing.Dict[str, float]:
        """Mean ns per request for each segment."""
        if self.request_count == 0:
            return {segment: 0.0 for segment in SEGMENTS}
        return {segment: total / self.request_count
                for segment, total in self.segment_totals.items()}

    def segment_fractions(self) -> typing.Dict[str, float]:
        """Each segment's share of the summed end-to-end latency."""
        if self.total_latency_ns <= 0:
            return {segment: 0.0 for segment in SEGMENTS}
        return {segment: total / self.total_latency_ns
                for segment, total in self.segment_totals.items()}


def attribute_requests(
        spans: typing.Sequence[Span]) -> typing.List[RequestAttribution]:
    """Attribute every request span found in ``spans``.

    Requests are matched to their hardware spans through the ``req``
    span argument the instrumented channel/module/link emit; request
    spans recorded before that argument existed are skipped.
    """
    # Request ids are cell-local (they restart at every experiment
    # cell), so key by (scope, req): the scope string distinguishes
    # same-numbered requests from different cells in one span slice.
    children: typing.Dict[typing.Tuple[str, int], typing.List[Span]] = {}
    requests: typing.List[Span] = []
    for span in spans:
        if span.track == "requests":
            if "req" in span.args:
                requests.append(span)
            continue
        req = span.args.get("req")
        if req is None or span.name not in SPAN_SEGMENT:
            continue
        children.setdefault((span.scope, int(req)), []).append(span)
    return [
        _attribute_one(request, children.get(
            (request.scope, int(request.args["req"])), []))
        for request in requests
    ]


def _attribute_one(request: Span,
                   spans: typing.Sequence[Span]) -> RequestAttribution:
    start, end = request.start_ns, request.end_ns
    clipped: typing.List[typing.Tuple[float, float, str]] = []
    overlap_parts: typing.List[float] = []
    for span in spans:
        segment = SPAN_SEGMENT[span.name]
        if span.name == "read_burst":
            overlap_parts.append(float(span.args.get("overlap", 0.0)))
        lo = max(span.start_ns, start)
        hi = min(span.end_ns, end)
        if hi > lo:
            clipped.append((lo, hi, segment))
    pieces: typing.Dict[str, typing.List[float]] = {
        segment: [] for segment in SEGMENTS}
    boundaries = sorted({start, end}
                        | {lo for lo, _, _ in clipped}
                        | {hi for _, hi, _ in clipped})
    for lo, hi in zip(boundaries, boundaries[1:]):
        if hi <= lo:
            continue
        midpoint = (lo + hi) / 2.0
        winner = "queue_wait"
        rank = len(_PRIORITY)
        for span_lo, span_hi, segment in clipped:
            if span_lo <= midpoint < span_hi and _PRIORITY[segment] < rank:
                rank = _PRIORITY[segment]
                winner = segment
        pieces[winner].append(hi - lo)
    overlap = math.fsum(overlap_parts)
    segments = {segment: math.fsum(parts)
                for segment, parts in pieces.items()}
    segments["interleave_hidden"] = overlap
    return RequestAttribution(
        request_id=int(request.args["req"]),
        op=str(request.args.get("op", request.name.split(" ")[0])),
        address=int(request.args.get("address", 0)),
        size=int(request.args.get("size", 0)),
        scope=request.scope,
        start_ns=start,
        end_ns=end,
        segments=segments,
        overlap_ns=overlap,
    )


def summarize(attributions: typing.Sequence[RequestAttribution]
              ) -> AttributionSummary:
    """Aggregate per-request attributions into one summary."""
    totals = {
        segment: math.fsum(a.segments.get(segment, 0.0)
                           for a in attributions)
        for segment in SEGMENTS
    }
    return AttributionSummary(
        request_count=len(attributions),
        total_latency_ns=math.fsum(a.latency_ns for a in attributions),
        segment_totals=totals,
        overlap_total_ns=math.fsum(a.overlap_ns for a in attributions),
    )


def verify_attribution(
        attributions: typing.Sequence[RequestAttribution],
        overlap_total_ns: float | None = None) -> typing.List[str]:
    """Check the exactness invariant; returns problems (empty = holds).

    Per request: no negative segment, the credited overlap fits inside
    the burst segment, and all segments minus the credited overlap sum
    to the end-to-end latency.  Across the run: per-request overlap
    credits sum to ``overlap_total_ns`` (pass the
    ``sched.interleave.overlap_ns`` counter value) when given.
    """
    problems: typing.List[str] = []
    for attribution in attributions:
        label = f"request {attribution.request_id}"
        for segment, value in attribution.segments.items():
            if value < 0.0:
                problems.append(
                    f"{label}: negative {segment} segment ({value} ns)")
        burst = attribution.segments.get("rdb_burst", 0.0)
        if attribution.overlap_ns > burst + ABS_TOL:
            problems.append(
                f"{label}: credited overlap {attribution.overlap_ns} ns "
                f"exceeds burst segment {burst} ns")
        if not math.isclose(attribution.attributed_ns,
                            attribution.latency_ns,
                            rel_tol=REL_TOL, abs_tol=ABS_TOL):
            problems.append(
                f"{label}: segments minus overlap sum to "
                f"{attribution.attributed_ns} ns, not the end-to-end "
                f"{attribution.latency_ns} ns")
    if overlap_total_ns is not None:
        credited = math.fsum(a.overlap_ns for a in attributions)
        if not math.isclose(credited, overlap_total_ns,
                            rel_tol=REL_TOL, abs_tol=ABS_TOL):
            problems.append(
                f"per-request overlap credits sum to {credited} ns, "
                f"but the scheduler observed {overlap_total_ns} ns")
    return problems
