"""Per-experiment profile reports: terminal tables and standalone HTML.

:func:`build_profile` folds one experiment's span capture through the
attribution pass (:mod:`repro.telemetry.profile`) and the utilization
gauges (:mod:`repro.telemetry.gauges`) into a single
:class:`ExperimentProfile`; :func:`render_text` prints it for
``repro-experiments --profile`` and :func:`render_html` writes the
``--report`` dashboard — a single self-contained file (inline CSS, no
external assets) that CI can upload as an artifact.
"""

from __future__ import annotations

import dataclasses
import html
import typing

from repro.sim.stats import Histogram
from repro.telemetry import gauges as gauges_mod
from repro.telemetry import profile as profile_mod
from repro.telemetry.tracer import Span


@dataclasses.dataclass
class ExperimentProfile:
    """Everything the dashboard shows for one experiment."""

    name: str
    window_ns: float
    attributions: typing.List[profile_mod.RequestAttribution]
    summary: profile_mod.AttributionSummary
    utilization: typing.List[gauges_mod.TrackUtilization]
    littles: gauges_mod.LittlesLawCheck | None
    invariant_problems: typing.List[str]
    latency_quantiles: typing.Dict[str, float] = \
        dataclasses.field(default_factory=dict)

    @property
    def hidden_fraction(self) -> float:
        """Interleave-hidden time as a share of summed latency (Fig 12)."""
        if self.summary.total_latency_ns <= 0:
            return 0.0
        return (self.summary.overlap_total_ns
                / self.summary.total_latency_ns)


def build_profile(name: str, spans: typing.Sequence[Span],
                  overlap_total_ns: float | None = None
                  ) -> ExperimentProfile:
    """Attribute, gauge, and invariant-check one experiment's capture."""
    attributions = profile_mod.attribute_requests(spans)
    summary = profile_mod.summarize(attributions)
    window = gauges_mod.capture_window(spans)
    latencies = Histogram("profile.latency")
    for attribution in attributions:
        latencies.add(attribution.latency_ns)
    return ExperimentProfile(
        name=name,
        window_ns=window[1] - window[0],
        attributions=attributions,
        summary=summary,
        utilization=gauges_mod.utilization_table(spans, window),
        littles=gauges_mod.littles_law(spans),
        invariant_problems=profile_mod.verify_attribution(
            attributions, overlap_total_ns),
        latency_quantiles=latencies.quantiles(),
    )


def _fmt_ns(value: float) -> str:
    if value >= 1e6:
        return f"{value / 1e6:.3f} ms"
    if value >= 1e3:
        return f"{value / 1e3:.3f} us"
    return f"{value:.1f} ns"


def render_text(profile: ExperimentProfile,
                max_tracks: int = 12) -> str:
    """Terminal rendering of one experiment profile."""
    count = profile.summary.request_count
    mean_latency = (_fmt_ns(profile.summary.total_latency_ns / count)
                    if count else "-")
    lines = [f"profile: {profile.name}",
             f"  window {_fmt_ns(profile.window_ns)}, {count} requests, "
             f"mean latency {mean_latency}"]
    if profile.latency_quantiles:
        tail = "  ".join(
            f"{label} {_fmt_ns(value)}"
            for label, value in profile.latency_quantiles.items())
        lines.append(f"  latency quantiles: {tail}")
    lines.append("  latency attribution (mean per request / share of "
                 "end-to-end):")
    means = profile.summary.segment_means()
    fractions = profile.summary.segment_fractions()
    for segment in profile_mod.SEGMENTS:
        mean = means.get(segment, 0.0)
        if mean == 0.0:
            continue
        tag = " (hidden by interleaving)" \
            if segment == "interleave_hidden" else ""
        lines.append(f"    {segment:<18} {_fmt_ns(mean):>12}  "
                     f"{fractions.get(segment, 0.0):6.1%}{tag}")
    if profile.utilization:
        lines.append("  busiest tracks:")
        for row in profile.utilization[:max_tracks]:
            lines.append(f"    {row.track:<18} {row.utilization:6.1%} "
                         f"busy  ({row.span_count} spans, "
                         f"{_fmt_ns(row.busy_ns)})")
        dropped = len(profile.utilization) - max_tracks
        if dropped > 0:
            lines.append(f"    ... {dropped} more track(s)")
    if profile.littles is not None:
        check = profile.littles
        lines.append(
            f"  little's law: L={check.mean_depth:.4f} vs "
            f"lambda*W={check.predicted_depth:.4f} "
            f"(ratio {check.ratio:.6f}, "
            f"{'consistent' if check.consistent(1e-6) else 'INCONSISTENT'})")
    if profile.invariant_problems:
        lines.append(f"  ATTRIBUTION INVARIANT VIOLATED "
                     f"({len(profile.invariant_problems)} problem(s)):")
        for problem in profile.invariant_problems[:10]:
            lines.append(f"    - {problem}")
    else:
        lines.append("  attribution invariant: holds "
                     f"(overlap credited "
                     f"{_fmt_ns(profile.summary.overlap_total_ns)}, "
                     f"{profile.hidden_fraction:.1%} of latency hidden)")
    return "\n".join(lines)


_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; color: #1a1a2e; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; margin: 0.5rem 0; }
th, td { padding: 0.25rem 0.8rem; text-align: right;
         border-bottom: 1px solid #ddd; font-size: 0.9rem; }
th:first-child, td:first-child { text-align: left; }
.bar { display: inline-block; height: 0.7rem; background: #4361ee;
       vertical-align: middle; }
.bar.hidden { background: #2ec4b6; }
.ok { color: #2a9d2a; } .bad { color: #c1121f; font-weight: bold; }
.meta { color: #666; font-size: 0.85rem; }
svg.spark { vertical-align: middle; }
"""


def _segment_rows(profile: ExperimentProfile) -> str:
    means = profile.summary.segment_means()
    fractions = profile.summary.segment_fractions()
    rows = []
    for segment in profile_mod.SEGMENTS:
        mean = means.get(segment, 0.0)
        if mean == 0.0:
            continue
        share = fractions.get(segment, 0.0)
        bar_class = "bar hidden" if segment == "interleave_hidden" \
            else "bar"
        rows.append(
            f"<tr><td>{html.escape(segment)}</td>"
            f"<td>{_fmt_ns(mean)}</td><td>{share:.1%}</td>"
            f"<td style='text-align:left'>"
            f"<span class='{bar_class}' "
            f"style='width:{min(share, 1.0) * 20:.2f}rem'></span>"
            f"</td></tr>")
    return "".join(rows)


def _utilization_rows(profile: ExperimentProfile) -> str:
    rows = []
    for row in profile.utilization:
        rows.append(
            f"<tr><td>{html.escape(row.track)}</td>"
            f"<td>{row.utilization:.1%}</td>"
            f"<td>{_fmt_ns(row.busy_ns)}</td>"
            f"<td>{row.span_count}</td>"
            f"<td style='text-align:left'>"
            f"<span class='bar' "
            f"style='width:{min(row.utilization, 1.0) * 20:.2f}rem'>"
            f"</span></td></tr>")
    return "".join(rows)


def _quantile_meta(profile: ExperimentProfile) -> str:
    if not profile.latency_quantiles:
        return ""
    return " · " + " · ".join(
        f"{html.escape(label)} {_fmt_ns(value)}"
        for label, value in profile.latency_quantiles.items())


def _svg_sparkline(values: typing.Sequence[float],
                   width: int = 240, height: int = 32) -> str:
    """Inline SVG polyline over a series (self-contained, no JS)."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    step = width / max(1, len(values) - 1)
    points = " ".join(
        f"{i * step:.1f},{height - 2 - (v - lo) / span * (height - 4):.1f}"
        for i, v in enumerate(values))
    return (f"<svg width='{width}' height='{height}' class='spark'>"
            f"<polyline points='{points}' fill='none' "
            f"stroke='#4361ee' stroke-width='1.5'/></svg>")


def _timeseries_section(document: typing.Mapping[str, typing.Any]) -> str:
    """Windowed-series sparklines and latency-sketch quantile tables."""
    window_ns = float(document.get("window_ns", 0.0))
    parts = [f"<h2>timeseries</h2><p class='meta'>sampling window "
             f"{_fmt_ns(window_ns)} · schema "
             f"{html.escape(str(document.get('schema', '?')))}</p>"]
    series = document.get("series", {})
    if series:
        rows = []
        for path in sorted(series):
            values = [float(v) for v in series[path].get("v", [])]
            stat = (f"min {min(values):.3g} · mean "
                    f"{sum(values) / len(values):.3g} · max "
                    f"{max(values):.3g}") if values else "empty"
            rows.append(
                f"<tr><td>{html.escape(path)}</td>"
                f"<td>{len(values)}</td>"
                f"<td style='text-align:left'>{_svg_sparkline(values)}"
                f"</td><td style='text-align:left' class='meta'>{stat}"
                f"</td></tr>")
        parts.append("<table><tr><th>series</th><th>windows</th>"
                     "<th>trend</th><th></th></tr>"
                     + "".join(rows) + "</table>")
    sketches = document.get("sketches", {})
    if sketches:
        rows = []
        for path in sorted(sketches):
            sketch = sketches[path]
            quantiles = sketch.get("quantiles", {})
            cells = "".join(
                f"<td>{_fmt_ns(float(quantiles[label]))}</td>"
                if label in quantiles else "<td>-</td>"
                for label in ("p50", "p95", "p99", "p999"))
            rows.append(
                f"<tr><td>{html.escape(path)}</td>"
                f"<td>{sketch.get('count', 0)}</td>{cells}"
                f"<td>{sketch.get('clamped', 0)}</td></tr>")
        parts.append("<h3>latency sketches</h3>"
                     "<table><tr><th>sketch</th><th>samples</th>"
                     "<th>p50</th><th>p95</th><th>p99</th><th>p999</th>"
                     "<th>clamped</th></tr>"
                     + "".join(rows) + "</table>")
    return "".join(parts)


def _hostprof_section(payload: typing.Mapping[str, typing.Any]) -> str:
    """Host wall-clock buckets from a ``HostProfiler.to_payload()``."""
    buckets = payload.get("buckets", [])
    total = sum(int(entry[1]) for entry in buckets) or 1
    counts = {tuple(raw): int(count)
              for raw, count in payload.get("bucket_counts", [])}
    dispatches = sum(int(v)
                     for v in payload.get("dispatches", {}).values())
    schedules = sum(int(v)
                    for v in payload.get("schedules", {}).values())
    parts = [f"<h2>host profile</h2><p class='meta'>"
             f"{dispatches} dispatches · {schedules} schedules · "
             f"{payload.get('runs', 0)} run(s) · "
             f"{_fmt_ns(float(total))} attributed host time</p>"]
    rows = []
    ranked = sorted(buckets, key=lambda entry: (-int(entry[1]), entry[0]))
    for raw_key, host_ns in ranked[:24]:
        share = int(host_ns) / total
        rows.append(
            f"<tr><td>{html.escape(' / '.join(raw_key))}</td>"
            f"<td>{_fmt_ns(float(host_ns))}</td>"
            f"<td>{share:.1%}</td>"
            f"<td>{counts.get(tuple(raw_key), 0)}</td>"
            f"<td style='text-align:left'>"
            f"<span class='bar' "
            f"style='width:{min(share, 1.0) * 20:.2f}rem'></span>"
            f"</td></tr>")
    parts.append("<table><tr><th>bucket</th><th>host time</th>"
                 "<th>share</th><th>dispatches</th><th></th></tr>"
                 + "".join(rows) + "</table>")
    dropped = len(ranked) - 24
    if dropped > 0:
        parts.append(f"<p class='meta'>... {dropped} more bucket(s)</p>")
    return "".join(parts)


def render_html(profiles: typing.Sequence[ExperimentProfile],
                title: str = "repro experiment profiles",
                timeseries: typing.Optional[
                    typing.Mapping[str, typing.Any]] = None,
                hostprof: typing.Optional[
                    typing.Mapping[str, typing.Any]] = None) -> str:
    """Self-contained HTML dashboard for one or more experiments.

    ``timeseries`` takes an exported timeseries document (the dict
    shape written by :func:`repro.telemetry.timeseries.write_timeseries`)
    and appends a windowed-series + latency-sketch section;
    ``hostprof`` takes a :meth:`HostProfiler.to_payload` dict and
    appends a host wall-clock bucket table.
    """
    sections = []
    for profile in profiles:
        summary = profile.summary
        mean_latency = (summary.total_latency_ns / summary.request_count
                        if summary.request_count else 0.0)
        if profile.invariant_problems:
            problems = "".join(
                f"<li>{html.escape(p)}</li>"
                for p in profile.invariant_problems[:20])
            invariant = (f"<p class='bad'>attribution invariant violated"
                         f"</p><ul>{problems}</ul>")
        else:
            invariant = (f"<p class='ok'>attribution invariant holds — "
                         f"{_fmt_ns(summary.overlap_total_ns)} "
                         f"({profile.hidden_fraction:.1%} of latency) "
                         f"hidden by interleaving</p>")
        littles = ""
        if profile.littles is not None:
            check = profile.littles
            state = ("<span class='ok'>consistent</span>"
                     if check.consistent(1e-6)
                     else "<span class='bad'>INCONSISTENT</span>")
            littles = (f"<p class='meta'>Little's law: "
                       f"L = {check.mean_depth:.4f}, "
                       f"&lambda;&middot;W = {check.predicted_depth:.4f}, "
                       f"ratio {check.ratio:.6f} — {state}</p>")
        sections.append(f"""
<h2>{html.escape(profile.name)}</h2>
<p class='meta'>window {_fmt_ns(profile.window_ns)} ·
{summary.request_count} requests · mean latency
{_fmt_ns(mean_latency)}{_quantile_meta(profile)}</p>
{invariant}
<h3>latency attribution</h3>
<table><tr><th>segment</th><th>mean/request</th><th>share</th>
<th></th></tr>{_segment_rows(profile)}</table>
<h3>track utilization</h3>
<table><tr><th>track</th><th>busy</th><th>busy time</th>
<th>spans</th><th></th></tr>{_utilization_rows(profile)}</table>
{littles}
""")
    if timeseries is not None:
        sections.append(_timeseries_section(timeseries))
    if hostprof is not None:
        sections.append(_hostprof_section(hostprof))
    body = "".join(sections) if sections else "<p>no captures</p>"
    return (f"<!DOCTYPE html><html><head><meta charset='utf-8'>"
            f"<title>{html.escape(title)}</title>"
            f"<style>{_CSS}</style></head><body>"
            f"<h1>{html.escape(title)}</h1>{body}</body></html>\n")
