"""Host wall-clock profiler: bucket attribution, census, flamegraphs.

The engine half lives in :mod:`repro.sim.hostprof` (hook interface +
ambient slot); this module is the collector and its exporters:

* :class:`HostProfiler` — a :class:`~repro.sim.hostprof.
  HostProfilerHook` that attributes every dispatch's host nanoseconds
  to a ``(component, process, phase, event-kind)`` bucket and counts
  the dispatch census (events per kind, schedule pushes per kind,
  callbacks per process, same-timestamp batch sizes in a
  :class:`~repro.sim.stats.Histogram`).  It is its own ambient
  *provider* (``create_hostprof`` returns ``self``), so one profiler
  accumulates across every simulator a run builds.
* Flamegraph exporters: collapsed-stack lines (``a;b;c <ns>``, the
  format every flamegraph toolchain eats) and speedscope JSON
  (https://speedscope.app), plus structural validators for both.
* :func:`render_flame` / :func:`render_summary` — terminal top-N views
  for ``python -m repro.telemetry flame`` and the experiments CLI.
* :meth:`HostProfiler.bench_metrics` — ``host_ns.*`` aggregates for
  the BENCH trajectory.  They are tagged ``neutral`` (advisory, not
  gating): host time varies with the machine, so ``telemetry compare``
  reports the movement without ever failing CI on it — the overhead
  *guards* in ``benchmarks/`` gate, on ratios measured interleaved on
  one host.

Attribution model
-----------------
The engine's profiled drain brackets each ``run()`` with
``begin_run``/``end_run`` and times each dispatch ``[start, end)``.
The collector keeps a cursor on that timeline: the gap before a
dispatch accrues to the kernel's own bucket (heap pops, clock writes —
:data:`KERNEL_BUCKET`), the dispatch itself to the event's bucket, so
the buckets *tile* the drain and their sum tracks end-to-end ``run()``
wall clock (the ≥95% attribution criterion the simulator benchmark
asserts).

Determinism: the hook's ``clock`` is injectable, so tests stub it with
a counter and every export becomes byte-reproducible.
"""

from __future__ import annotations

import json
import typing

from repro.sim.hostprof import HostClock, HostProfilerHook
from repro.sim.process import Process
from repro.sim.stats import Histogram
from repro.telemetry.bench import BenchMetric

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.event import Event

#: One attribution bucket: (component, process, phase, event kind).
BucketKey = typing.Tuple[str, str, str, str]

#: The kernel's own inter-dispatch work (heap management, clock
#: writes, hook bookkeeping): everything between dispatch segments.
KERNEL_BUCKET: BucketKey = ("kernel", "-", "drain", "-")

#: Schema tag stamped into every speedscope export.
SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"

#: Placeholder for an unattributable classification field.
UNKNOWN = "-"


def classify_event(event: "Event",
                   callbacks: typing.Sequence[typing.Callable[..., None]]
                   ) -> BucketKey:
    """Map one dispatched event to its attribution bucket.

    * **kind** — the event's class name, except the kernel-made plain
      events whose name marks their role (``*.bootstrap`` /
      ``*.passthrough``), which profile as their role: they are pure
      kernel glue, and a flamegraph full of bare ``Event`` frames says
      nothing.
    * **process / component / phase** — from the first pre-dispatch
      callback bound to a :class:`~repro.sim.process.Process` (the
      same scan the tracer's event labels use): the process name, and
      the owning class / method split of the generator's qualname
      (``ChannelController._chunk_process`` → component
      ``ChannelController``, phase ``_chunk_process``).  Module-level
      generators get component ``toplevel``.
    * events nobody waits on fall back to the kernel component with an
      ``idle`` phase — they cost only their own bookkeeping.
    """
    kind = type(event).__name__
    name = getattr(event, "name", "") or ""
    if kind == "Event" and name:
        for role in ("bootstrap", "passthrough"):
            if name == role or name.endswith("." + role):
                kind = role
                break
    for callback in callbacks:
        owner = getattr(callback, "__self__", None)
        if isinstance(owner, Process):
            qualname = getattr(owner._generator, "__qualname__", "")
            parts = [part for part in qualname.split(".")
                     if part and part != "<locals>"]
            if len(parts) > 1:
                component, phase = parts[0], parts[-1]
            elif parts:
                component, phase = "toplevel", parts[0]
            else:
                component, phase = "toplevel", owner.name or UNKNOWN
            return (component, owner.name or UNKNOWN, phase, kind)
    return ("kernel", UNKNOWN, "idle", kind)


class HostProfiler(HostProfilerHook):
    """Accumulating collector + ambient provider for host profiling.

    Install with :func:`repro.sim.hostprof.use_hostprof`; every
    simulator built inside the scope feeds this one instance
    (``create_hostprof`` returns ``self`` — the kernel is
    single-threaded, so sequential runs share the collector safely).
    """

    def __init__(self, clock: typing.Optional[HostClock] = None) -> None:
        if clock is not None:
            self.clock = clock  # type: ignore[method-assign]
        #: host ns per (component, process, phase, kind) bucket.
        self.buckets: typing.Dict[BucketKey, int] = {}
        #: dispatch count per bucket.
        self.bucket_counts: typing.Dict[BucketKey, int] = {}
        #: dispatch count per event kind (census).
        self.dispatches: typing.Dict[str, int] = {}
        #: `_schedule` admissions per event kind (census).
        self.schedules: typing.Dict[str, int] = {}
        #: callbacks dispatched per owning process name (census).
        self.callbacks: typing.Dict[str, int] = {}
        #: same-timestamp batch sizes (census).
        self.batch_sizes = Histogram("hostprof.batch_size")
        #: completed run() drains and their summed host ns.
        self.runs = 0
        self.run_ns = 0
        self._run_start = 0
        self._cursor = 0

    # -- engine hook ----------------------------------------------------
    def begin_run(self, host_ns: int) -> None:
        self._run_start = host_ns
        self._cursor = host_ns

    def end_run(self, host_ns: int) -> None:
        tail = host_ns - self._cursor
        if tail > 0:
            self.buckets[KERNEL_BUCKET] = (
                self.buckets.get(KERNEL_BUCKET, 0) + tail)
        self.runs += 1
        self.run_ns += host_ns - self._run_start
        self._cursor = host_ns

    def on_dispatch(self, event: "Event",
                    callbacks: typing.Sequence[typing.Callable[..., None]],
                    start_ns: int, end_ns: int) -> None:
        gap = start_ns - self._cursor
        if gap > 0:
            self.buckets[KERNEL_BUCKET] = (
                self.buckets.get(KERNEL_BUCKET, 0) + gap)
        key = classify_event(event, callbacks)
        self.buckets[key] = self.buckets.get(key, 0) + (end_ns - start_ns)
        self.bucket_counts[key] = self.bucket_counts.get(key, 0) + 1
        kind = key[3]
        self.dispatches[kind] = self.dispatches.get(kind, 0) + 1
        process = key[1]
        self.callbacks[process] = (
            self.callbacks.get(process, 0) + len(callbacks))
        self._cursor = end_ns

    def on_batch(self, size: int) -> None:
        self.batch_sizes.add(size)

    def on_schedule(self, event: "Event") -> None:
        kind = type(event).__name__
        self.schedules[kind] = self.schedules.get(kind, 0) + 1

    # -- ambient provider -----------------------------------------------
    def create_hostprof(self) -> "HostProfiler":
        """Providers mint hooks; this collector hands out itself."""
        return self

    # -- aggregates -----------------------------------------------------
    def total_ns(self) -> int:
        """Sum of every bucket — tiles the measured ``run()`` drains."""
        return sum(self.buckets.values())

    def attributed_fraction(self, measured_ns: float) -> float:
        """Share of an externally measured wall clock the buckets cover."""
        if measured_ns <= 0:
            return 0.0
        return self.total_ns() / measured_ns

    def component_totals(self) -> typing.Dict[str, int]:
        """Host ns per component, descending-friendly plain dict."""
        totals: typing.Dict[str, int] = {}
        for (component, _, _, _), ns in self.buckets.items():
            totals[component] = totals.get(component, 0) + ns
        return totals

    def census(self) -> typing.Dict[str, typing.Any]:
        """The host-time-free counts: identical serial vs ``--jobs N``."""
        return {
            "dispatches": dict(sorted(self.dispatches.items())),
            "schedules": dict(sorted(self.schedules.items())),
            "callbacks": dict(sorted(self.callbacks.items())),
            "batch_sizes": list(self.batch_sizes.samples),
            "bucket_counts": {";".join(key): count for key, count
                              in sorted(self.bucket_counts.items())},
        }

    def bench_metrics(self, prefix: str = "host_ns"
                      ) -> typing.Dict[str, BenchMetric]:
        """``host_ns.*`` aggregates for the BENCH trajectory.

        All ``neutral``: host time is advisory (machine-dependent), so
        ``telemetry compare`` shows the movement but never gates on it.
        """
        metrics = {
            f"{prefix}.total": BenchMetric(
                value=float(self.total_ns()), better="neutral", unit="ns"),
        }
        for component, ns in sorted(self.component_totals().items()):
            metrics[f"{prefix}.{component}"] = BenchMetric(
                value=float(ns), better="neutral", unit="ns")
        return metrics

    # -- merge / payload (fragments bridge) -----------------------------
    def merge(self, other: "HostProfiler") -> None:
        """Fold ``other`` into this collector (associative: sums and
        sample-list concatenation only, so any merge grouping of
        fragments produces the same totals)."""
        for key, ns in other.buckets.items():
            self.buckets[key] = self.buckets.get(key, 0) + ns
        for key, count in other.bucket_counts.items():
            self.bucket_counts[key] = self.bucket_counts.get(key, 0) + count
        for mapping, theirs in ((self.dispatches, other.dispatches),
                                (self.schedules, other.schedules),
                                (self.callbacks, other.callbacks)):
            for name, count in theirs.items():
                mapping[name] = mapping.get(name, 0) + count
        for sample in other.batch_sizes.samples:
            self.batch_sizes.add(sample)
        self.runs += other.runs
        self.run_ns += other.run_ns

    def to_payload(self) -> typing.Dict[str, typing.Any]:
        """Picklable/JSON-able snapshot (sorted, reproducible order)."""
        return {
            "runs": self.runs,
            "run_ns": self.run_ns,
            "buckets": [[list(key), ns] for key, ns
                        in sorted(self.buckets.items())],
            "bucket_counts": [[list(key), count] for key, count
                              in sorted(self.bucket_counts.items())],
            "dispatches": dict(sorted(self.dispatches.items())),
            "schedules": dict(sorted(self.schedules.items())),
            "callbacks": dict(sorted(self.callbacks.items())),
            "batch_sizes": list(self.batch_sizes.samples),
        }

    @classmethod
    def from_payload(cls, payload: typing.Dict[str, typing.Any]
                     ) -> "HostProfiler":
        """Rebuild a collector from :meth:`to_payload`."""
        profiler = cls()
        profiler.runs = int(payload.get("runs", 0))
        profiler.run_ns = int(payload.get("run_ns", 0))
        for raw_key, ns in payload.get("buckets", []):
            profiler.buckets[_bucket_key(raw_key)] = int(ns)
        for raw_key, count in payload.get("bucket_counts", []):
            profiler.bucket_counts[_bucket_key(raw_key)] = int(count)
        profiler.dispatches = {str(k): int(v) for k, v
                               in payload.get("dispatches", {}).items()}
        profiler.schedules = {str(k): int(v) for k, v
                              in payload.get("schedules", {}).items()}
        profiler.callbacks = {str(k): int(v) for k, v
                              in payload.get("callbacks", {}).items()}
        for sample in payload.get("batch_sizes", []):
            profiler.batch_sizes.add(sample)
        return profiler


def _bucket_key(raw: typing.Sequence[typing.Any]) -> BucketKey:
    if len(raw) != 4:
        raise ValueError(f"bucket key must have 4 fields, got {raw!r}")
    return (str(raw[0]), str(raw[1]), str(raw[2]), str(raw[3]))


# ----------------------------------------------------------------------
# Collapsed-stack export
# ----------------------------------------------------------------------
def collapsed_stacks(profiler: HostProfiler) -> typing.List[str]:
    """``component;process;phase;kind <ns>`` lines, sorted.

    The format `flamegraph.pl`, inferno, and speedscope's importer all
    consume; integer weights so the round trip is exact.
    """
    return [
        ";".join(key) + f" {ns}"
        for key, ns in sorted(profiler.buckets.items())
    ]


def write_collapsed(profiler: HostProfiler, path: str) -> None:
    """Write the collapsed-stack flamegraph to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        for line in collapsed_stacks(profiler):
            handle.write(line + "\n")


def parse_collapsed(lines: typing.Iterable[str]
                    ) -> typing.Dict[BucketKey, int]:
    """Inverse of :func:`collapsed_stacks` (round-trip validation)."""
    buckets: typing.Dict[BucketKey, int] = {}
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        stack, _, weight = line.rpartition(" ")
        if not stack or not weight.isdigit():
            raise ValueError(
                f"line {index + 1}: not a collapsed stack: {line!r}")
        key = _bucket_key(stack.split(";"))
        buckets[key] = buckets.get(key, 0) + int(weight)
    return buckets


# ----------------------------------------------------------------------
# Speedscope export
# ----------------------------------------------------------------------
def speedscope_document(profiler: HostProfiler,
                        name: str = "repro hostprof"
                        ) -> typing.Dict[str, typing.Any]:
    """The profile as a speedscope ``sampled`` document.

    Each bucket becomes one 4-frame stack (component → process →
    phase → kind) weighted by its host nanoseconds, so speedscope's
    left-heavy and sandwich views read directly as the attribution
    hierarchy.
    """
    frames: typing.List[typing.Dict[str, str]] = []
    frame_index: typing.Dict[str, int] = {}

    def frame(label: str) -> int:
        if label not in frame_index:
            frame_index[label] = len(frames)
            frames.append({"name": label})
        return frame_index[label]

    samples: typing.List[typing.List[int]] = []
    weights: typing.List[int] = []
    for key, ns in sorted(profiler.buckets.items()):
        if ns <= 0:
            continue
        samples.append([frame(label) for label in key])
        weights.append(ns)
    total = sum(weights)
    return {
        "$schema": SPEEDSCOPE_SCHEMA,
        "name": name,
        "exporter": "repro.telemetry.hostprof",
        "activeProfileIndex": 0,
        "shared": {"frames": frames},
        "profiles": [{
            "type": "sampled",
            "name": name,
            "unit": "nanoseconds",
            "startValue": 0,
            "endValue": total,
            "samples": samples,
            "weights": weights,
        }],
    }


def validate_speedscope(document: typing.Any) -> typing.List[str]:
    """Structural schema check; returns problem strings (empty = valid)."""
    problems: typing.List[str] = []
    if not isinstance(document, dict):
        return ["document is not a JSON object"]
    if document.get("$schema") != SPEEDSCOPE_SCHEMA:
        problems.append(f"$schema is {document.get('$schema')!r}, "
                        f"expected {SPEEDSCOPE_SCHEMA!r}")
    shared = document.get("shared")
    frames = shared.get("frames") if isinstance(shared, dict) else None
    if not isinstance(frames, list):
        problems.append("missing shared.frames array")
        frames = []
    for index, entry in enumerate(frames):
        if not isinstance(entry, dict) or not isinstance(
                entry.get("name"), str):
            problems.append(f"frame {index}: needs a string 'name'")
    profiles = document.get("profiles")
    if not isinstance(profiles, list) or not profiles:
        problems.append("missing non-empty profiles array")
        profiles = []
    for index, profile in enumerate(profiles):
        if not isinstance(profile, dict):
            problems.append(f"profile {index}: not an object")
            continue
        if profile.get("type") != "sampled":
            problems.append(f"profile {index}: type is "
                            f"{profile.get('type')!r}, expected 'sampled'")
            continue
        samples = profile.get("samples")
        weights = profile.get("weights")
        if not isinstance(samples, list) or not isinstance(weights, list):
            problems.append(f"profile {index}: needs samples and weights "
                            "arrays")
            continue
        if len(samples) != len(weights):
            problems.append(
                f"profile {index}: {len(samples)} samples vs "
                f"{len(weights)} weights")
        for position, stack in enumerate(samples):
            if not isinstance(stack, list) or not stack:
                problems.append(f"profile {index}: sample {position} is "
                                "not a non-empty stack")
                continue
            bad = [ref for ref in stack
                   if not isinstance(ref, int)
                   or not 0 <= ref < len(frames)]
            if bad:
                problems.append(f"profile {index}: sample {position} "
                                f"references unknown frames {bad}")
        span = (profile.get("endValue", 0)
                - profile.get("startValue", 0))
        total = sum(weight for weight in weights
                    if isinstance(weight, (int, float)))
        if total != span:
            problems.append(
                f"profile {index}: weights sum to {total}, "
                f"endValue - startValue is {span}")
    return problems


def write_speedscope(profiler: HostProfiler, path: str,
                     name: str = "repro hostprof") -> None:
    """Write the speedscope JSON flamegraph to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(speedscope_document(profiler, name), handle,
                  indent=2, sort_keys=True)
        handle.write("\n")


def load_speedscope(path: str) -> typing.Dict[str, typing.Any]:
    """Load a speedscope JSON document written by :func:`write_speedscope`."""
    with open(path, encoding="utf-8") as handle:
        loaded = json.load(handle)
    if not isinstance(loaded, dict):
        raise ValueError(f"{path}: not a speedscope document")
    return loaded


def write_hostprof(profiler: HostProfiler, path: str,
                   name: str = "repro hostprof") -> str:
    """Suffix-dispatched export: collapsed stacks for ``.collapsed`` /
    ``.txt`` paths, speedscope JSON otherwise.  Returns the format."""
    if path.endswith((".collapsed", ".txt")):
        write_collapsed(profiler, path)
        return "collapsed"
    write_speedscope(profiler, path, name)
    return "speedscope"


# ----------------------------------------------------------------------
# Terminal rendering
# ----------------------------------------------------------------------
_BAR = "█"
_BAR_ASCII = "#"


def _fmt_host_ns(value: float) -> str:
    if value >= 1e9:
        return f"{value / 1e9:.3f} s"
    if value >= 1e6:
        return f"{value / 1e6:.3f} ms"
    if value >= 1e3:
        return f"{value / 1e3:.3f} us"
    return f"{value:.0f} ns"


def render_flame(document: typing.Dict[str, typing.Any], top: int = 20,
                 width: int = 40, ascii_: bool = False) -> str:
    """Top-N weighted stacks of a speedscope document, as bars.

    Works on any valid single-profile ``sampled`` document, so it can
    render exports from other tools too — not just our own.
    """
    frames = document.get("shared", {}).get("frames", [])
    profile = document.get("profiles", [{}])[0]
    samples = profile.get("samples", [])
    weights = profile.get("weights", [])
    rows = sorted(
        ((";".join(frames[ref]["name"] for ref in stack), weight)
         for stack, weight in zip(samples, weights)),
        key=lambda row: (-row[1], row[0]))
    total = sum(weight for _, weight in rows)
    glyph = _BAR_ASCII if ascii_ else _BAR
    dash = "-" if ascii_ else "—"
    unit = profile.get("unit", "units")
    lines = [f"hostprof: {document.get('name', '?')} {dash} "
             f"{_fmt_host_ns(total) if unit == 'nanoseconds' else total} "
             f"over {len(rows)} bucket(s)"]
    shown = rows[:top]
    label_width = max((len(label) for label, _ in shown), default=5)
    for label, weight in shown:
        share = weight / total if total else 0.0
        bar = glyph * max(1, round(share * width))
        amount = (_fmt_host_ns(weight) if unit == "nanoseconds"
                  else str(weight))
        lines.append(f"  {label:<{label_width}}  {amount:>11}  "
                     f"{share:6.1%}  {bar}")
    dropped = len(rows) - len(shown)
    if dropped > 0:
        rest = sum(weight for _, weight in rows[top:])
        rest_label = (_fmt_host_ns(rest) if unit == "nanoseconds"
                      else str(rest))
        lines.append(f"  ... {dropped} more bucket(s), {rest_label}")
    return "\n".join(lines)


def render_summary(profiler: HostProfiler, top: int = 10,
                   ascii_: bool = False) -> str:
    """Terminal summary: census line + top components + top buckets."""
    total = profiler.total_ns()
    dispatches = sum(profiler.dispatches.values())
    schedules = sum(profiler.schedules.values())
    batches = len(profiler.batch_sizes)
    lines = [
        f"host profile: {_fmt_host_ns(total)} attributed over "
        f"{profiler.runs} run(s)",
        f"  census: {dispatches} dispatches, {schedules} schedules, "
        f"{batches} batches"
        + (f" (mean size {profiler.batch_sizes.mean:.2f})"
           if batches else ""),
    ]
    components = sorted(profiler.component_totals().items(),
                        key=lambda item: (-item[1], item[0]))
    glyph = _BAR_ASCII if ascii_ else _BAR
    if components:
        lines.append("  by component:")
        name_width = max(len(name) for name, _ in components)
        for name, ns in components:
            share = ns / total if total else 0.0
            lines.append(f"    {name:<{name_width}}  "
                         f"{_fmt_host_ns(ns):>11}  {share:6.1%}  "
                         f"{glyph * max(1, round(share * 30))}")
    hot = sorted(profiler.buckets.items(),
                 key=lambda item: (-item[1], item[0]))[:top]
    if hot:
        lines.append(f"  hottest buckets (top {len(hot)}):")
        label_width = max(len(";".join(key)) for key, _ in hot)
        for key, ns in hot:
            count = profiler.bucket_counts.get(key, 0)
            lines.append(f"    {';'.join(key):<{label_width}}  "
                         f"{_fmt_host_ns(ns):>11}  "
                         f"({count} dispatch(es))")
    return "\n".join(lines)
