"""Time-weighted utilization gauges on simulated time.

:class:`IntervalGauge` is the primitive: a busy-interval accumulator
whose occupancy can be sampled at any instant — including *while a hold
is still open* (re-entrant sampling clips the open interval at the
sample point), over a window the run never reached (intervals clip at
the window edge), or over a zero-duration run (utilization 0, never a
division by zero).

On top of it, :func:`track_gauges` folds a span recording into one
gauge per hardware track, so a traced run yields partition busy%,
channel-bus utilization, and per-PE run timelines with no extra
instrumentation; :func:`request_depth_series` rebuilds the in-flight
request-queue depth from the async request spans; and
:func:`littles_law` cross-checks that depth against the measured
latency (L = λ·W — the time-weighted mean depth must equal throughput
times mean latency over the capture window, which for a fully captured
run holds to float precision).
"""

from __future__ import annotations

import dataclasses
import math
import typing

from repro.sim.stats import TimeSeries
from repro.telemetry.tracer import Span

#: Tracks that hold overlapping in-flight work rather than an
#: exclusive hardware resource; busy% is meaningless for them.
_QUEUE_TRACK_SUFFIXES = (".inflight",)
_QUEUE_TRACKS = frozenset({"requests", "psc"})


def merged_length(
        intervals: typing.Iterable[typing.Tuple[float, float]]) -> float:
    """Total length of the union of (start, end) intervals."""
    ordered = sorted((lo, hi) for lo, hi in intervals if hi > lo)
    if not ordered:
        return 0.0
    pieces: typing.List[float] = []
    merged_lo, merged_hi = ordered[0]
    for lo, hi in ordered[1:]:
        if lo > merged_hi:
            pieces.append(merged_hi - merged_lo)
            merged_lo, merged_hi = lo, hi
        else:
            merged_hi = max(merged_hi, hi)
    pieces.append(merged_hi - merged_lo)
    return math.fsum(pieces)


class IntervalGauge:
    """Busy-interval accumulator with time-weighted sampling.

    ``acquire``/``release`` track a (possibly nested) hold on a
    resource; ``add_interval`` records a closed busy window directly.
    Nested holds count once — occupancy is a union, not a sum.
    """

    def __init__(self, name: str = "gauge") -> None:
        self.name = name
        self._intervals: typing.List[typing.Tuple[float, float]] = []
        self._depth = 0
        self._since = 0.0

    @property
    def depth(self) -> int:
        """Current nesting depth of open holds."""
        return self._depth

    @property
    def interval_count(self) -> int:
        """Closed busy intervals recorded so far."""
        return len(self._intervals)

    def acquire(self, now: float) -> None:
        """Open (or nest) a hold starting at ``now``."""
        if math.isnan(now):
            raise ValueError("cannot acquire at NaN")
        if self._depth == 0:
            self._since = now
        self._depth += 1

    def release(self, now: float) -> None:
        """Close one hold; the outermost close records the interval."""
        if self._depth <= 0:
            raise ValueError(f"gauge {self.name!r}: release without acquire")
        self._depth -= 1
        if self._depth == 0:
            self.add_interval(self._since, now)

    def add_interval(self, start: float, end: float) -> None:
        """Record one closed busy window (zero-length windows drop)."""
        if math.isnan(start) or math.isnan(end):
            raise ValueError("cannot record a NaN interval")
        if end < start:
            raise ValueError(
                f"gauge {self.name!r}: interval ends before it starts "
                f"({start} -> {end})")
        if end > start:
            self._intervals.append((start, end))

    def busy_ns(self, start: float, end: float) -> float:
        """Union busy time inside [start, end].

        Intervals extending past the window clip at its edges; an open
        hold is sampled re-entrantly, clipped at ``end`` (the sim-end
        clip: sampling mid-run never counts time that has not been
        simulated yet).
        """
        if end <= start:
            return 0.0
        window = [(max(lo, start), min(hi, end))
                  for lo, hi in self._intervals if hi > start and lo < end]
        if self._depth > 0 and self._since < end:
            window.append((max(self._since, start), end))
        return merged_length(window)

    def utilization(self, start: float, end: float) -> float:
        """Busy fraction over [start, end] (0.0 for an empty window)."""
        if end <= start:
            return 0.0
        return self.busy_ns(start, end) / (end - start)


@dataclasses.dataclass
class TrackUtilization:
    """One hardware lane's occupancy over the capture window."""

    track: str
    busy_ns: float
    utilization: float
    span_count: int


@dataclasses.dataclass
class LittlesLawCheck:
    """L = λ·W cross-check between queue depth and measured latency."""

    window_ns: float
    request_count: int
    mean_depth: float           # L: time-weighted in-flight requests
    throughput_per_ns: float    # λ: completions per simulated ns
    mean_latency_ns: float      # W: mean end-to-end request latency
    predicted_depth: float      # λ·W

    @property
    def ratio(self) -> float:
        """L / (λ·W); 1.0 when the telemetry is self-consistent."""
        if self.predicted_depth == 0.0:
            return 1.0 if self.mean_depth == 0.0 else math.inf
        return self.mean_depth / self.predicted_depth

    def consistent(self, tolerance: float = 1e-6) -> bool:
        """Does Little's law hold within ``tolerance``?"""
        return abs(self.ratio - 1.0) <= tolerance


def _is_resource_track(track: str) -> bool:
    if track in _QUEUE_TRACKS:
        return False
    return not any(track.endswith(suffix)
                   for suffix in _QUEUE_TRACK_SUFFIXES)


def track_gauges(spans: typing.Sequence[Span]
                 ) -> typing.Dict[str, IntervalGauge]:
    """One busy gauge per exclusive-resource track in ``spans``.

    Queue-like tracks (``requests``, ``*.inflight``, ``psc``) are
    excluded: their spans overlap by design, so busy% would saturate
    meaninglessly.
    """
    gauges: typing.Dict[str, IntervalGauge] = {}
    for span in spans:
        if span.asynchronous or not _is_resource_track(span.track):
            continue
        gauge = gauges.get(span.track)
        if gauge is None:
            gauge = IntervalGauge(span.track)
            gauges[span.track] = gauge
        gauge.add_interval(span.start_ns, span.end_ns)
    return gauges


def capture_window(spans: typing.Sequence[Span]
                   ) -> typing.Tuple[float, float]:
    """The simulated window ``spans`` cover: (0, latest end).

    Simulations start at t=0, so utilization is "fraction of the run",
    not "fraction of the span's own lifetime".  Returns ``(0.0, 0.0)``
    for an empty capture (the zero-duration-run case).
    """
    if not spans:
        return (0.0, 0.0)
    return (0.0, max(span.end_ns for span in spans))


def utilization_table(
        spans: typing.Sequence[Span],
        window: typing.Tuple[float, float] | None = None,
) -> typing.List[TrackUtilization]:
    """Per-track busy time and utilization, busiest first."""
    if window is None:
        window = capture_window(spans)
    start, end = window
    counts: typing.Dict[str, int] = {}
    for span in spans:
        if not span.asynchronous and _is_resource_track(span.track):
            counts[span.track] = counts.get(span.track, 0) + 1
    table = []
    for track, gauge in track_gauges(spans).items():
        busy = gauge.busy_ns(start, end)
        table.append(TrackUtilization(
            track=track, busy_ns=busy,
            utilization=gauge.utilization(start, end),
            span_count=counts.get(track, 0)))
    table.sort(key=lambda row: (-row.utilization, row.track))
    return table


def request_depth_series(spans: typing.Sequence[Span]) -> TimeSeries:
    """In-flight request depth rebuilt from the async request spans.

    Completions sort before submissions at the same instant, so a
    back-to-back handoff never shows a phantom depth spike.
    """
    deltas: typing.List[typing.Tuple[float, int]] = []
    for span in spans:
        if span.track != "requests" or not span.asynchronous:
            continue
        deltas.append((span.start_ns, 1))
        deltas.append((span.end_ns, -1))
    deltas.sort()
    series = TimeSeries("requests.depth")
    depth = 0
    for time, delta in deltas:
        depth += delta
        series.record(time, float(depth))
    return series


def littles_law(
        spans: typing.Sequence[Span]) -> LittlesLawCheck | None:
    """Cross-check queue depth against latency over a full capture.

    Returns None when the capture holds no request spans or spans no
    time (a zero-duration run has nothing to check).
    """
    requests = [span for span in spans
                if span.track == "requests" and span.asynchronous]
    if not requests:
        return None
    start = min(span.start_ns for span in requests)
    end = max(span.end_ns for span in requests)
    if end <= start:
        return None
    window = end - start
    depth = request_depth_series(requests)
    mean_depth = depth.time_weighted_mean(start, end)
    latencies = [span.end_ns - span.start_ns for span in requests]
    mean_latency = math.fsum(latencies) / len(latencies)
    throughput = len(latencies) / window
    return LittlesLawCheck(
        window_ns=window,
        request_count=len(requests),
        mean_depth=mean_depth,
        throughput_per_ns=throughput,
        mean_latency_ns=mean_latency,
        predicted_depth=throughput * mean_latency,
    )
