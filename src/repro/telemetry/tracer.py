"""Span tracing for the DRAM-less stack, with a zero-overhead null default.

Every component of the simulator (kernel, channel controllers, PRAM
modules, PEs, PCIe links) calls into a :class:`Tracer`.  The default
tracer is the no-op :data:`NULL_TRACER`: its hooks do nothing and
allocate nothing, and every hot path guards emission behind the
``tracer.enabled`` flag, so an untraced simulation pays only one
attribute load per instrumented site.

Tracers are *ambient*: components resolve :func:`current_tracer` at
construction time, so an experiment can be traced end to end without
threading a tracer argument through every constructor::

    tracer = RecordingTracer()
    with use_tracer(tracer):
        sim = Simulator()
        subsystem = PramSubsystem(sim)   # picks the tracer up
        ...
    write_perfetto(tracer, "trace.json")

The ambient slot is a :class:`contextvars.ContextVar`, not module or
class state, so two concurrent harness uses (threads, nested captures)
never clobber each other — each context sees its own tracer and
token-based restoration unwinds nesting correctly.

Spans carry **simulated** nanosecond timestamps (``Simulator.now``),
never wall-clock time, so recording a trace cannot perturb or be
perturbed by host scheduling.
"""

from __future__ import annotations

import contextlib
import contextvars
import dataclasses
import itertools
import typing


@dataclasses.dataclass
class Span:
    """One closed interval of simulated time on one named track.

    ``track`` identifies the hardware lane the span belongs to
    (``ch0.m0.p3``, ``ch0.bus``, ``pe2``, ``pcie.offload``, ...);
    ``scope`` groups tracks into a Perfetto "process" (one scope per
    system/policy run).  ``asynchronous`` marks in-flight request spans
    that may overlap on one track and export as Perfetto async slices.
    """

    name: str
    track: str
    start_ns: float
    end_ns: float
    scope: str = ""
    asynchronous: bool = False
    span_id: int = 0
    args: typing.Dict[str, typing.Any] = dataclasses.field(
        default_factory=dict)

    def to_dict(self) -> typing.Dict[str, typing.Any]:
        """JSON-serializable representation (span-log lines)."""
        return {
            "name": self.name,
            "track": self.track,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "scope": self.scope,
            "asynchronous": self.asynchronous,
            "span_id": self.span_id,
            "args": dict(self.args),
        }


class Tracer:
    """The tracing interface — and itself the zero-overhead null tracer.

    All hooks are no-ops; subclasses override the ones they care about
    and set :attr:`enabled` to True.  Instrumented code guards every
    call site with ``if tracer.enabled:`` so a disabled tracer costs a
    single attribute load and never constructs span objects, labels, or
    argument dicts.
    """

    #: Hot paths branch on this before building any span arguments.
    enabled: bool = False

    def emit(self, name: str, track: str, start_ns: float, end_ns: float,
             asynchronous: bool = False,
             **args: typing.Any) -> None:
        """Record one complete span of simulated time."""

    def instant(self, name: str, track: str, ts_ns: float,
                **args: typing.Any) -> None:
        """Record a zero-duration marker."""

    def kernel_event(self, ts_ns: float, label: str) -> None:
        """One DES kernel event was processed (``Simulator.step``)."""

    def command(self, record: typing.Any) -> None:
        """One LPDDR2-NVM :class:`CommandRecord` was issued.

        Recording tracers keep these so the span log doubles as a
        protocol-conformance trace (``repro.analysis``).
        """

    def scope(self, label: str) -> typing.ContextManager[typing.Any]:
        """Group subsequent spans under a named scope (no-op here)."""
        return _NULL_SCOPE


#: Reusable no-op context manager handed out by the null tracer's
#: ``scope`` — calling ``scope()`` on a disabled tracer allocates
#: nothing.
_NULL_SCOPE: typing.ContextManager[None] = contextlib.nullcontext()

#: The process-wide default tracer.  All hooks are no-ops.
NULL_TRACER = Tracer()


class KernelEventRecorder(Tracer):
    """Minimal tracer that records only kernel events into a sink.

    Used by the determinism harness: the sink receives
    ``(timestamp, label)`` tuples exactly as the seed's trace format
    did, so trace diffing is unchanged.
    """

    enabled = True

    def __init__(self, sink: typing.List[typing.Tuple[float, str]]) -> None:
        self.sink = sink

    def kernel_event(self, ts_ns: float, label: str) -> None:
        self.sink.append((ts_ns, label))


class RecordingTracer(Tracer):
    """Tracer that stores every span/instant/command for export.

    Purely observational: recording mutates only the tracer's own
    lists, so enabling it cannot change simulated timing or ordering
    (the determinism harness verifies this).

    Parameters
    ----------
    record_kernel_events:
        Also keep every DES kernel event (one entry per processed
        event — large; off by default).
    """

    enabled = True

    def __init__(self, record_kernel_events: bool = False) -> None:
        self.spans: typing.List[Span] = []
        self.instants: typing.List[Span] = []
        self.kernel_events: typing.List[typing.Tuple[float, str]] = []
        self.commands: typing.List[typing.Any] = []
        self._record_kernel = record_kernel_events
        self._ids = itertools.count(1)
        self._scopes: typing.List[str] = []

    # ------------------------------------------------------------------
    def emit(self, name: str, track: str, start_ns: float, end_ns: float,
             asynchronous: bool = False,
             **args: typing.Any) -> None:
        self.spans.append(Span(
            name=name, track=track, start_ns=start_ns, end_ns=end_ns,
            scope=self._current_scope(), asynchronous=asynchronous,
            span_id=next(self._ids), args=args))

    def instant(self, name: str, track: str, ts_ns: float,
                **args: typing.Any) -> None:
        self.instants.append(Span(
            name=name, track=track, start_ns=ts_ns, end_ns=ts_ns,
            scope=self._current_scope(), span_id=next(self._ids),
            args=args))

    def kernel_event(self, ts_ns: float, label: str) -> None:
        if self._record_kernel:
            self.kernel_events.append((ts_ns, label))

    def command(self, record: typing.Any) -> None:
        self.commands.append(record)

    @contextlib.contextmanager
    def scope(self, label: str) -> typing.Iterator["RecordingTracer"]:
        """All spans emitted inside group under ``label``.

        Scopes nest with ``/`` separators and export as one Perfetto
        process per distinct scope path.
        """
        self._scopes.append(label)
        try:
            yield self
        finally:
            self._scopes.pop()

    # ------------------------------------------------------------------
    def _current_scope(self) -> str:
        return "/".join(self._scopes)

    def __len__(self) -> int:
        return len(self.spans) + len(self.instants)


class MultiTracer(Tracer):
    """Fans every hook out to several tracers (explicit + ambient)."""

    def __init__(self, tracers: typing.Sequence[Tracer]) -> None:
        self.tracers = tuple(tracers)
        # A fan-out of disabled children must look disabled itself, or
        # instrumentation guarded by `tracer.enabled` pays the full
        # recording cost on --metrics-only runs.
        self.enabled = any(tracer.enabled for tracer in self.tracers)

    def emit(self, name: str, track: str, start_ns: float, end_ns: float,
             asynchronous: bool = False,
             **args: typing.Any) -> None:
        for tracer in self.tracers:
            tracer.emit(name, track, start_ns, end_ns,
                        asynchronous=asynchronous, **args)

    def instant(self, name: str, track: str, ts_ns: float,
                **args: typing.Any) -> None:
        for tracer in self.tracers:
            tracer.instant(name, track, ts_ns, **args)

    def kernel_event(self, ts_ns: float, label: str) -> None:
        for tracer in self.tracers:
            tracer.kernel_event(ts_ns, label)

    def command(self, record: typing.Any) -> None:
        for tracer in self.tracers:
            tracer.command(record)

    @contextlib.contextmanager
    def scope(self, label: str) -> typing.Iterator["MultiTracer"]:
        with contextlib.ExitStack() as stack:
            for tracer in self.tracers:
                stack.enter_context(tracer.scope(label))
            yield self


def combine(*tracers: typing.Optional[Tracer]) -> Tracer:
    """Collapse several maybe-null tracers into one effective tracer."""
    active: typing.List[Tracer] = []
    for tracer in tracers:
        if tracer is None or not tracer.enabled:
            continue
        children = (tracer.tracers if isinstance(tracer, MultiTracer)
                    else (tracer,))
        for child in children:
            if not child.enabled:
                continue
            if any(child is seen for seen in active):
                continue
            active.append(child)
    if not active:
        return NULL_TRACER
    if len(active) == 1:
        return active[0]
    return MultiTracer(active)


# ----------------------------------------------------------------------
# Ambient tracer (context-local, not class-level)
# ----------------------------------------------------------------------
_AMBIENT: contextvars.ContextVar[Tracer] = contextvars.ContextVar(
    "repro_telemetry_tracer", default=NULL_TRACER)


def current_tracer() -> Tracer:
    """The context's ambient tracer (:data:`NULL_TRACER` by default)."""
    return _AMBIENT.get()


@contextlib.contextmanager
def use_tracer(tracer: Tracer) -> typing.Iterator[Tracer]:
    """Install ``tracer`` as the ambient tracer for the ``with`` body.

    Components (simulators, subsystems, PEs, links) constructed inside
    the body bind to it.  Token-based restoration makes nested and
    concurrent uses independent — the footgun the seed's class-level
    ``Simulator._trace_sink`` had.
    """
    token = _AMBIENT.set(tracer)
    try:
        yield tracer
    finally:
        _AMBIENT.reset(token)
