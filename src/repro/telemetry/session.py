"""One-stop telemetry session: tracer + metrics + export in one object.

The experiments CLI and the examples use this instead of wiring the
pieces by hand::

    telemetry = Telemetry()
    with telemetry.activate():
        run_experiment()
    telemetry.write_trace("trace.json")     # open in ui.perfetto.dev
    telemetry.write_spanlog("spans.jsonl")  # feed to repro.analysis
    print(telemetry.summary())              # terminal metrics table
"""

from __future__ import annotations

import contextlib
import typing

from repro.sim.sampling import use_sampling
from repro.telemetry.export import write_perfetto, write_spanlog
from repro.telemetry.metrics import MetricsRegistry, use_metrics
from repro.telemetry.timeseries import (
    SamplingConfig,
    export_document,
    write_timeseries,
)
from repro.telemetry.tracer import RecordingTracer, use_tracer


class Telemetry:
    """A recording tracer and a metrics registry, activated together."""

    def __init__(self, record_kernel_events: bool = False,
                 record_spans: bool = True,
                 timeseries: typing.Optional[SamplingConfig] = None) -> None:
        self.record_spans = record_spans
        self.tracer = RecordingTracer(
            record_kernel_events=record_kernel_events)
        self.metrics = MetricsRegistry()
        self.timeseries = timeseries

    @contextlib.contextmanager
    def activate(self) -> typing.Iterator["Telemetry"]:
        """Install both as the ambient tracer/registry for the body.

        With ``record_spans=False`` only the metrics registry is
        installed — the ambient tracer stays null, so metrics-only runs
        keep the zero-overhead tracing path.  With a ``timeseries``
        sampling config, simulators built inside the body sample
        windowed series into the registry.
        """
        with contextlib.ExitStack() as stack:
            if self.record_spans:
                stack.enter_context(use_tracer(self.tracer))
            stack.enter_context(use_metrics(self.metrics))
            if self.timeseries is not None:
                stack.enter_context(use_sampling(self.timeseries))
            yield self

    # -- export ---------------------------------------------------------
    def write_trace(self, path: str) -> None:
        """Perfetto/Chrome JSON (load at ui.perfetto.dev)."""
        write_perfetto(self.tracer, path)

    def write_spanlog(self, path: str) -> None:
        """JSON-lines span log (spans, instants, protocol commands)."""
        write_spanlog(self.tracer, path)

    def timeseries_document(self) -> typing.Dict[str, typing.Any]:
        """The registry's series/sketches as an exportable document."""
        config = self.timeseries if self.timeseries is not None \
            else SamplingConfig()
        return export_document(self.metrics, config.window_ns)

    def write_timeseries(self, path: str) -> None:
        """Export sampled series + sketches (JSON, or CSV by suffix)."""
        write_timeseries(path, self.timeseries_document())

    def summary(self, pattern: str = "*") -> str:
        """Terminal metrics table (fnmatch ``pattern`` filters paths)."""
        return self.metrics.summary_table(pattern)
