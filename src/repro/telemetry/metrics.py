"""Hierarchical metrics registry over the ``sim/stats`` containers.

The simulator's components already keep :class:`~repro.sim.stats.Counter`
/ :class:`~repro.sim.stats.Histogram` / :class:`~repro.sim.stats.Breakdown`
instances; the registry gives those containers *names in a shared
namespace* — dotted component paths such as ``pram.ch0.part3.rab_hits``,
``sched.interleave.overlap_ns`` or ``pe.3.sleep_ns`` — so an experiment
can snapshot, filter (fnmatch patterns) and tabulate everything the run
recorded without knowing which object owns which container.

Like the tracer, the registry is ambient (:func:`current_metrics` /
:func:`use_metrics`) and defaults to a disabled instance: components
register unconditionally, and when no registry is active the calls
hand back unregistered throwaway containers and record nothing.
"""

from __future__ import annotations

import contextlib
import contextvars
import fnmatch
import math
import sys
import typing

from repro.sim.stats import (
    Breakdown,
    Counter,
    Histogram,
    LatencySketch,
    TimeSeries,
)

#: Anything the registry can hold under a path.
Container = typing.Union[
    Counter, Histogram, Breakdown, TimeSeries, LatencySketch]


def _caller_site(depth: int) -> str:
    """``file:line`` of the frame ``depth`` levels above the caller."""
    frame = sys._getframe(depth + 1)
    return f"{frame.f_code.co_filename}:{frame.f_lineno}"


class MetricsRegistry:
    """Named counters/gauges/histograms with hierarchical paths.

    Paths are dotted strings.  ``counter``/``histogram``/``breakdown``/
    ``series`` are get-or-create: two callers asking for the same path
    share one container.  :meth:`attach` registers a container a
    component already owns; :meth:`component_prefix` reserves a unique
    namespace per component instance so two subsystems in one process
    (e.g. the two policy runs inside the Fig. 12 experiment) never
    silently merge their numbers — the second registrant gets a ``#2``
    suffix.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._containers: typing.Dict[str, Container] = {}
        self._gauges: typing.Dict[str, float] = {}
        # assigned prefix -> the base it was reserved under, in
        # reservation order — fragment merge (repro.telemetry.fragments)
        # replays reservations to keep ``#N`` suffixes deterministic.
        self._prefixes: typing.Dict[str, str] = {}
        # base -> most recently assigned prefix for it (see
        # latest_prefix).
        self._latest_prefix: typing.Dict[str, str] = {}
        # Paths whose last write came through gauge_max (peak semantics);
        # fragment merge folds these with max() instead of overwrite.
        self._gauge_max_paths: typing.Set[str] = set()
        # path -> "file:line" of the registration site, recorded only at
        # registration time so collisions can name both parties.
        self._sites: typing.Dict[str, str] = {}

    # -- namespace management ------------------------------------------
    def component_prefix(self, base: str) -> str:
        """Reserve a unique dotted prefix for one component instance."""
        if not self.enabled:
            return base
        prefix = base
        counter = 2
        while prefix in self._prefixes:
            prefix = f"{base}#{counter}"
            counter += 1
        self._prefixes[prefix] = base
        self._latest_prefix[base] = prefix
        return prefix

    def latest_prefix(self, base: str) -> str:
        """The most recently reserved prefix for ``base`` (``base``
        itself if never reserved).

        For satellite components that record into another component's
        namespace — e.g. the PSC's per-PE sleep clocks live under the
        owning PE's ``pe.N`` prefix, whatever ``#K`` suffix that PE was
        assigned.
        """
        return self._latest_prefix.get(base, base)

    # -- registration --------------------------------------------------
    def attach(self, path: str, container: Container) -> str:
        """Register an existing container; returns the path (``path``).

        Re-attaching the *same* container object is idempotent.
        Attaching a *different* object under an occupied path raises
        ``ValueError`` naming both registration sites: a dotted path
        names exactly one series, and silently suffixing the second
        registrant produced charts where half a component's samples hid
        under a ``#N`` name nobody plotted.  Components wanting
        per-instance namespaces reserve one with
        :meth:`component_prefix` instead.
        """
        if not self.enabled:
            return path
        existing = self._containers.get(path)
        if existing is container:
            return path
        if existing is not None or path in self._gauges:
            first = self._sites.get(path, "<unknown site>")
            raise ValueError(
                f"metric path {path!r} is already registered (first "
                f"registered at {first}, now re-registered with a "
                f"different container at {_caller_site(1)}); reserve a "
                f"component_prefix() for per-instance namespaces"
            )
        self._containers[path] = container
        self._sites[path] = _caller_site(1)
        return path

    def gauge(self, path: str, value: float) -> None:
        """Set (overwrite) a scalar gauge."""
        if not self.enabled:
            return
        self._gauges[path] = value
        self._gauge_max_paths.discard(path)

    def gauge_max(self, path: str, value: float) -> None:
        """Raise a scalar gauge to ``value`` if it is the new peak."""
        if not self.enabled:
            return
        self._gauge_max_paths.add(path)
        current = self._gauges.get(path)
        if current is None or value > current:
            self._gauges[path] = value

    # -- get-or-create containers --------------------------------------
    def counter(self, path: str) -> Counter:
        """Shared counter at ``path`` (created on first use)."""
        return self._get_or_create(path, Counter)

    def histogram(self, path: str) -> Histogram:
        """Shared histogram at ``path`` (created on first use)."""
        return self._get_or_create(path, Histogram)

    def breakdown(self, path: str) -> Breakdown:
        """Shared breakdown at ``path`` (created on first use)."""
        return self._get_or_create(path, Breakdown)

    def series(self, path: str) -> TimeSeries:
        """Shared time series at ``path`` (created on first use)."""
        return self._get_or_create(path, TimeSeries)

    def sketch(self, path: str) -> LatencySketch:
        """Shared latency sketch at ``path`` (created on first use)."""
        return self._get_or_create(path, LatencySketch)

    _C = typing.TypeVar("_C", Counter, Histogram, Breakdown, TimeSeries,
                        LatencySketch)

    def _get_or_create(self, path: str, kind: typing.Type[_C]) -> _C:
        if not self.enabled:
            return kind(path)
        container = self._containers.get(path)
        if container is None:
            container = kind(path)
            self._containers[path] = container
        elif not isinstance(container, kind):
            raise TypeError(
                f"metric {path!r} already registered as "
                f"{type(container).__name__}, not {kind.__name__}"
            )
        return container

    # -- inspection -----------------------------------------------------
    def paths(self, pattern: str = "*") -> typing.List[str]:
        """All registered paths matching the fnmatch ``pattern``."""
        everything = sorted(set(self._containers) | set(self._gauges))
        return [p for p in everything if fnmatch.fnmatch(p, pattern)]

    def get(self, path: str) -> typing.Optional[Container]:
        """The container registered at ``path`` (None if absent)."""
        return self._containers.get(path)

    def snapshot(self, pattern: str = "*"
                 ) -> typing.Dict[str, float]:
        """Flat ``path -> scalar`` view of everything matching ``pattern``.

        Histograms flatten to ``path.count/.mean/.p50/.p99``; breakdowns
        flatten to one entry per category plus ``path.total``; series to
        ``path.samples``.
        """
        flat: typing.Dict[str, float] = {}
        for path in self.paths(pattern):
            if path in self._gauges:
                flat[path] = self._gauges[path]
                continue
            container = self._containers[path]
            if isinstance(container, Counter):
                flat[path] = container.value
            elif isinstance(container, Histogram):
                flat[f"{path}.count"] = float(len(container))
                flat[f"{path}.mean"] = container.mean
                if len(container):
                    flat[f"{path}.p50"] = container.percentile(0.50)
                    flat[f"{path}.p99"] = container.percentile(0.99)
            elif isinstance(container, Breakdown):
                for category, amount in container.as_dict().items():
                    flat[f"{path}.{category}"] = amount
                flat[f"{path}.total"] = container.total
            elif isinstance(container, TimeSeries):
                flat[f"{path}.samples"] = float(len(container))
            elif isinstance(container, LatencySketch):
                flat[f"{path}.count"] = float(container.count)
                for quantile_name, value in container.quantiles().items():
                    flat[f"{path}.{quantile_name}"] = value
        return flat

    def summary_table(self, pattern: str = "*") -> str:
        """Aligned two-column text table of :meth:`snapshot`."""
        flat = self.snapshot(pattern)
        if not flat:
            return "(no metrics recorded)"
        width = max(len(path) for path in flat)
        lines = [f"{'metric':<{width}}  value",
                 f"{'-' * width}  {'-' * 12}"]
        for path in sorted(flat):
            value = flat[path]
            if math.isnan(value):
                rendered = "nan"
            elif value == int(value) and abs(value) < 1e15:
                rendered = f"{int(value)}"
            else:
                rendered = f"{value:.4g}"
            lines.append(f"{path:<{width}}  {rendered}")
        return "\n".join(lines)

    # -- lifecycle ------------------------------------------------------
    def reset(self) -> None:
        """Reset every registered container and clear all gauges.

        Registration (paths, prefixes) survives, so a harness can reuse
        one wiring across telemetry epochs.
        """
        for container in self._containers.values():
            container.reset()
        self._gauges.clear()
        self._gauge_max_paths.clear()


#: Disabled registry: hands out unregistered containers, records nothing.
NULL_METRICS = MetricsRegistry(enabled=False)


# ----------------------------------------------------------------------
# Ambient registry (context-local, mirrors tracer.use_tracer)
# ----------------------------------------------------------------------
_AMBIENT: contextvars.ContextVar[MetricsRegistry] = contextvars.ContextVar(
    "repro_telemetry_metrics", default=NULL_METRICS)


def current_metrics() -> MetricsRegistry:
    """The context's ambient registry (:data:`NULL_METRICS` by default)."""
    return _AMBIENT.get()


@contextlib.contextmanager
def use_metrics(registry: MetricsRegistry
                ) -> typing.Iterator[MetricsRegistry]:
    """Install ``registry`` as the ambient registry for the body."""
    token = _AMBIENT.set(registry)
    try:
        yield registry
    finally:
        _AMBIENT.reset(token)
