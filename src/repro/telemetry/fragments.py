"""Serializable telemetry fragments for process-parallel runs.

The parallel experiment runner (:mod:`repro.experiments.parallel`)
executes each cell of the evaluation matrix in a worker process with a
*fresh* tracer and metrics registry.  This module is the bridge back:
it captures a worker's telemetry as a picklable **fragment** and merges
fragments into the parent's ambient tracer/registry **deterministically**
— always in cell-key order, never completion order — so a parallel run
reproduces the serial run's registry contents and span stream exactly.

Two invariants make the merge parity-exact with a serial run:

* ``component_prefix`` reservations are *replayed*: each fragment
  records ``(assigned, base)`` pairs in reservation order, and the
  merge asks the target registry for a fresh prefix per base.  Cell 2's
  worker-local ``subsys`` therefore lands as ``subsys#2`` in the merged
  registry, exactly where the serial run would have put it.
* Shared (non-prefixed) paths such as ``sched.interleave.overlap_ns``
  accumulate: counters add, histograms pool samples, breakdowns merge
  category-wise, series concatenate, latency sketches fold bucket-wise
  (an associative integer merge) — matching a serial run where all
  cells write through one shared container.

Gauges keep their write semantics: plain gauges overwrite in merge
order (last cell wins, as in a serial run); peak gauges recorded via
``gauge_max`` fold with ``max``.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing

from repro.sim.stats import (
    Breakdown,
    Counter,
    Histogram,
    LatencySketch,
    TimeSeries,
)
from repro.telemetry.hostprof import HostProfiler
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import RecordingTracer, Span

#: One serialized container: ``(path, kind tag, payload)``.
ContainerEntry = typing.Tuple[str, str, typing.Any]

#: One serialized gauge: ``(path, value, peak-semantics flag)``.
GaugeEntry = typing.Tuple[str, float, bool]

_KINDS: typing.Dict[str, typing.Type[typing.Any]] = {
    "counter": Counter,
    "histogram": Histogram,
    "breakdown": Breakdown,
    "series": TimeSeries,
    "sketch": LatencySketch,
}


@dataclasses.dataclass
class MetricsFragment:
    """One worker registry's contents, ready to pickle and merge.

    ``prefixes`` holds ``(assigned, base)`` reservations in order;
    ``containers`` and ``gauges`` preserve registration order so the
    merge replays the worker's writes faithfully.
    """

    prefixes: typing.List[typing.Tuple[str, str]]
    containers: typing.List[ContainerEntry]
    gauges: typing.List[GaugeEntry]

    def __len__(self) -> int:
        return len(self.containers) + len(self.gauges)


@dataclasses.dataclass
class TracerFragment:
    """One worker tracer's record, ready to pickle and merge.

    Spans/instants keep their worker-relative ``span_id``; the merge
    re-numbers them from the target tracer's counter so merged streams
    stay collision-free.
    """

    spans: typing.List[Span]
    instants: typing.List[Span]
    commands: typing.List[typing.Any]
    kernel_events: typing.List[typing.Tuple[float, str]]

    def __len__(self) -> int:
        return len(self.spans) + len(self.instants)


@dataclasses.dataclass
class HostProfFragment:
    """One worker host-profiler's record, ready to pickle and merge.

    The payload is :meth:`repro.telemetry.hostprof.HostProfiler.
    to_payload` — integer bucket sums and census counts plus the
    batch-size sample list, so merging is associative (any grouping of
    fragments folds to the same totals) and, merged in cell-key order,
    reproduces a serial run's census byte-for-byte.  Host nanoseconds
    legitimately differ between serial and sharded runs (different
    host work happened); only the census is parity-exact.
    """

    payload: typing.Dict[str, typing.Any]

    def __len__(self) -> int:
        return len(self.payload.get("buckets", []))


# ----------------------------------------------------------------------
# Capture (worker side)
# ----------------------------------------------------------------------
def capture_metrics(registry: MetricsRegistry) -> MetricsFragment:
    """Snapshot ``registry`` into a picklable fragment."""
    containers: typing.List[ContainerEntry] = []
    for path, container in registry._containers.items():
        if isinstance(container, Counter):
            containers.append(
                (path, "counter", (container.value, container.events)))
        elif isinstance(container, Histogram):
            containers.append((path, "histogram", list(container.samples)))
        elif isinstance(container, Breakdown):
            containers.append((path, "breakdown", container.as_dict()))
        elif isinstance(container, TimeSeries):
            containers.append((path, "series",
                               (list(container.times),
                                list(container.values))))
        elif isinstance(container, LatencySketch):
            containers.append((path, "sketch", container.to_payload()))
    gauges = [(path, value, path in registry._gauge_max_paths)
              for path, value in registry._gauges.items()]
    return MetricsFragment(
        prefixes=list(registry._prefixes.items()),
        containers=containers,
        gauges=gauges)


def capture_tracer(tracer: RecordingTracer) -> TracerFragment:
    """Snapshot ``tracer`` into a picklable fragment."""
    return TracerFragment(
        spans=list(tracer.spans),
        instants=list(tracer.instants),
        commands=list(tracer.commands),
        kernel_events=list(tracer.kernel_events))


def capture_hostprof(profiler: HostProfiler) -> HostProfFragment:
    """Snapshot ``profiler`` into a picklable fragment."""
    return HostProfFragment(payload=profiler.to_payload())


# ----------------------------------------------------------------------
# Merge (parent side)
# ----------------------------------------------------------------------
def merge_metrics(target: MetricsRegistry,
                  fragment: MetricsFragment) -> None:
    """Fold one fragment into ``target`` (call in cell-key order)."""
    if not target.enabled:
        return
    remap: typing.Dict[str, str] = {}
    for assigned, base in fragment.prefixes:
        remap[assigned] = target.component_prefix(base)

    def rewrite(path: str) -> str:
        best = ""
        for assigned in remap:
            if ((path == assigned or path.startswith(assigned + "."))
                    and len(assigned) > len(best)):
                best = assigned
        if not best:
            return path
        return remap[best] + path[len(best):]

    for path, kind, payload in fragment.containers:
        if kind not in _KINDS:
            raise ValueError(f"unknown container kind {kind!r} at {path!r}")
        container = target._get_or_create(rewrite(path), _KINDS[kind])
        if kind == "counter":
            value, events = payload
            container.value += value
            container.events += events
        elif kind == "histogram":
            for sample in payload:
                container.add(sample)
        elif kind == "breakdown":
            for category, amount in payload.items():
                container.add(category, amount)
        elif kind == "sketch":
            # Associative integer-bucket fold: any merge grouping of
            # fragments reproduces the serial sketch byte-for-byte.
            container.merge(LatencySketch.from_payload(path, payload))
        else:  # series: concatenation (worker series are cell-local)
            times, values = payload
            container.times.extend(times)
            container.values.extend(values)
    for path, value, is_peak in fragment.gauges:
        if is_peak:
            target.gauge_max(rewrite(path), value)
        else:
            target.gauge(rewrite(path), value)


def merge_tracer(target: RecordingTracer,
                 fragment: TracerFragment) -> None:
    """Append one fragment's record to ``target`` (in cell-key order).

    Worker ids are contiguous from 1 across spans *and* instants (they
    share one counter), so shifting every id by the target's consumed
    count reproduces the id stream a serial run would have assigned —
    including the span/instant interleaving.
    """
    base = len(target.spans) + len(target.instants)
    for span in fragment.spans:
        target.spans.append(dataclasses.replace(
            span, span_id=base + span.span_id))
    for instant in fragment.instants:
        target.instants.append(dataclasses.replace(
            instant, span_id=base + instant.span_id))
    target.commands.extend(fragment.commands)
    target.kernel_events.extend(fragment.kernel_events)
    # Re-seat the target's counter past the ids just claimed.
    target._ids = itertools.count(base + len(fragment) + 1)


def merge_hostprof(target: HostProfiler,
                   fragment: HostProfFragment) -> None:
    """Fold one host-profile fragment into ``target``.

    Pure integer sums plus batch-sample concatenation — associative,
    and in cell-key order it reproduces the serial census exactly.
    """
    target.merge(HostProfiler.from_payload(fragment.payload))
